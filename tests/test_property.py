"""Property-based tests (hypothesis) on the core invariants.

Three families:

1. **Cache bookkeeping** — for arbitrary annotated reference streams,
   the statistics always balance and the cache never exceeds capacity.
2. **Protocol coherence** — for reference streams whose kill bits obey
   the compiler's discipline (a killed address is written before it is
   next read), the data-carrying cache returns exactly what flat
   memory would.
3. **Compiler arithmetic** — randomly generated MiniC expressions
   evaluate to the same value as a Python model of C semantics, across
   promotion levels.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache, CacheConfig
from repro.cache.functional import DataCachedMemory
from repro.cache.replay import replay_trace
from repro.cache.belady import simulate_min
from repro.ir.instructions import RefClass, RefInfo, RegionKind
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE, TraceBuffer

# ----------------------------------------------------------------------
# Strategies.
# ----------------------------------------------------------------------

geometries = st.sampled_from(
    [
        dict(size_words=4, associativity=1),
        dict(size_words=4, associativity=4),
        dict(size_words=8, associativity=2),
        dict(size_words=16, associativity=4),
    ]
)

raw_refs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=23),  # address
        st.booleans(),  # write
        st.booleans(),  # bypass
        st.booleans(),  # kill
    ),
    max_size=200,
)


def make_trace(refs):
    trace = TraceBuffer()
    for address, is_write, bypass, kill in refs:
        flags = 0
        if is_write:
            flags |= FLAG_WRITE
        if bypass:
            flags |= FLAG_BYPASS
        if kill:
            flags |= FLAG_KILL
        trace.append(address, flags)
    return trace


class TestCacheBookkeeping:
    @given(geometry=geometries, refs=raw_refs,
           policy=st.sampled_from(["lru", "fifo", "random"]))
    @settings(max_examples=60, deadline=None)
    def test_stats_balance(self, geometry, refs, policy):
        cache = Cache(CacheConfig(policy=policy, **geometry))
        for address, is_write, bypass, kill in refs:
            cache.access(address, is_write, bypass, kill)
        stats = cache.stats
        assert stats.refs_total == len(refs)
        assert stats.refs_cached + stats.refs_bypassed == stats.refs_total
        assert stats.hits + stats.misses == stats.refs_cached
        assert stats.reads + stats.writes == stats.refs_total
        assert stats.writebacks <= stats.words_to_memory

    @given(geometry=geometries, refs=raw_refs)
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, geometry, refs):
        cache = Cache(CacheConfig(**geometry))
        for address, is_write, bypass, kill in refs:
            cache.access(address, is_write, bypass, kill)
            assert len(cache.contents()) <= geometry["size_words"]

    @given(geometry=geometries, refs=raw_refs)
    @settings(max_examples=40, deadline=None)
    def test_min_not_worse_than_lru(self, geometry, refs):
        # Compare under identical annotation handling.
        trace = make_trace(refs)
        lru = replay_trace(trace, CacheConfig(policy="lru", **geometry))
        best = simulate_min(trace, CacheConfig(policy="lru", **geometry))
        assert best.misses <= lru.misses

    @given(geometry=geometries, refs=raw_refs)
    @settings(max_examples=40, deadline=None)
    def test_ignoring_annotations_equals_plain_stream(self, geometry, refs):
        annotated = make_trace(refs)
        plain = make_trace(
            [(address, is_write, False, False)
             for address, is_write, _b, _k in refs]
        )
        ignore = CacheConfig(honor_bypass=False, honor_kill=False,
                             **geometry)
        honor_nothing = replay_trace(annotated, ignore)
        baseline = replay_trace(plain, CacheConfig(**geometry))
        assert honor_nothing.hits == baseline.hits
        assert honor_nothing.misses == baseline.misses
        assert honor_nothing.writebacks == baseline.writebacks


# ----------------------------------------------------------------------
# Protocol coherence with disciplined kill bits.
# ----------------------------------------------------------------------


def _ref(bypass, kill):
    ref = RefInfo("p", RegionKind.DIRECT)
    ref.ref_class = RefClass.UNAMBIGUOUS if bypass else RefClass.AMBIGUOUS
    ref.bypass = bypass
    ref.kill = kill
    return ref


@st.composite
def disciplined_streams(draw):
    """Reference streams whose kill bits respect value liveness:
    after a kill of address A, the next reference to A (if any) is a
    write.  This is exactly what the compiler's last-use analysis
    guarantees."""
    length = draw(st.integers(min_value=0, max_value=120))
    ops = []
    dead = set()
    for _ in range(length):
        address = draw(st.integers(min_value=0, max_value=15))
        is_write = draw(st.booleans())
        bypass = draw(st.booleans())
        if address in dead and not is_write:
            is_write = True  # Keep the discipline: write after kill.
        kill = not is_write and draw(st.booleans())
        if is_write:
            dead.discard(address)
        elif kill:
            dead.add(address)
        ops.append((address, is_write, bypass, kill))
    return ops


class TestProtocolCoherence:
    @given(geometry=geometries, ops=disciplined_streams())
    @settings(max_examples=80, deadline=None)
    def test_reads_match_flat_memory(self, geometry, ops):
        cached = DataCachedMemory(CacheConfig(line_words=1, **geometry))
        flat = {}
        for index, (address, is_write, bypass, kill) in enumerate(ops):
            ref = _ref(bypass, kill)
            if is_write:
                cached.write(address, index + 1, ref)
                flat[address] = index + 1
            else:
                value = cached.read(address, ref)
                assert value == flat.get(address, 0), (
                    "read of %d diverged at op %d" % (address, index)
                )


# ----------------------------------------------------------------------
# Compiler arithmetic fuzzing.
# ----------------------------------------------------------------------


def c_div(a, b):
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q


@st.composite
def expressions(draw, depth=0):
    """Generate (minic_text, python_value) pairs."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(min_value=0, max_value=99))
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "<", "==", "&&",
                               "||"]))
    left_text, left_value = draw(expressions(depth=depth + 1))
    right_text, right_value = draw(expressions(depth=depth + 1))
    if op == "+":
        value = left_value + right_value
    elif op == "-":
        value = left_value - right_value
    elif op == "*":
        value = left_value * right_value
    elif op == "/":
        if right_value == 0:
            return left_text, left_value
        value = c_div(left_value, right_value)
    elif op == "%":
        if right_value == 0:
            return left_text, left_value
        value = left_value - c_div(left_value, right_value) * right_value
    elif op == "<":
        value = 1 if left_value < right_value else 0
    elif op == "==":
        value = 1 if left_value == right_value else 0
    elif op == "&&":
        value = 1 if left_value and right_value else 0
    else:
        value = 1 if left_value or right_value else 0
    return "({} {} {})".format(left_text, op, right_text), value


class TestCompilerArithmetic:
    @given(pair=expressions(),
           promotion=st.sampled_from(["none", "modest", "aggressive"]))
    @settings(max_examples=60, deadline=None)
    def test_expression_evaluation(self, pair, promotion):
        from conftest import outputs

        text, expected = pair
        source = "int main() {{ print({}); return 0; }}".format(text)
        assert outputs(source, promotion=promotion) == [expected]

    @given(values=st.lists(st.integers(min_value=-50, max_value=50),
                           min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_array_sum_roundtrip(self, values):
        from conftest import compile_program

        program = compile_program(
            "int data[8]; int n;"
            "int main() { int i; int s; s = 0;"
            "for (i = 0; i < n; i++) s = s + data[i]; return s; }"
        )
        vm = program.machine()
        vm.set_global("n", len(values))
        for index, value in enumerate(values):
            vm.set_global("data", value, index)
        assert vm.run().return_value == sum(values)
