"""Lexer unit tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only(self):
        assert kinds("  \t\n  ") == [TokenKind.EOF]

    def test_single_identifier(self):
        tokens = tokenize("hello")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "hello"

    def test_identifier_with_underscore_and_digits(self):
        tokens = tokenize("_foo_42x")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "_foo_42x"

    def test_decimal_literal(self):
        tokens = tokenize("12345")
        assert tokens[0].kind is TokenKind.INT_LITERAL
        assert tokens[0].value == 12345

    def test_zero_literal(self):
        assert tokenize("0")[0].value == 0

    def test_hex_literal(self):
        assert tokenize("0x1F")[0].value == 31

    def test_hex_literal_lowercase(self):
        assert tokenize("0xff")[0].value == 255

    def test_keywords_are_not_identifiers(self):
        expected = [
            TokenKind.KW_INT,
            TokenKind.KW_VOID,
            TokenKind.KW_IF,
            TokenKind.KW_ELSE,
            TokenKind.KW_WHILE,
            TokenKind.KW_FOR,
            TokenKind.KW_RETURN,
            TokenKind.KW_BREAK,
            TokenKind.KW_CONTINUE,
            TokenKind.KW_DO,
            TokenKind.EOF,
        ]
        assert kinds("int void if else while for return break continue do") \
            == expected

    def test_keyword_prefix_is_identifier(self):
        tokens = tokenize("interior iffy")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[1].kind is TokenKind.IDENT


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("==", TokenKind.EQ),
            ("!=", TokenKind.NE),
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("&&", TokenKind.AND_AND),
            ("||", TokenKind.OR_OR),
            ("++", TokenKind.PLUS_PLUS),
            ("--", TokenKind.MINUS_MINUS),
            ("+=", TokenKind.PLUS_ASSIGN),
            ("-=", TokenKind.MINUS_ASSIGN),
        ],
    )
    def test_multi_char_operator(self, text, kind):
        assert kinds(text)[0] is kind

    @pytest.mark.parametrize(
        "text,kind",
        [
            ("+", TokenKind.PLUS),
            ("-", TokenKind.MINUS),
            ("*", TokenKind.STAR),
            ("/", TokenKind.SLASH),
            ("%", TokenKind.PERCENT),
            ("&", TokenKind.AMP),
            ("!", TokenKind.BANG),
            ("<", TokenKind.LT),
            (">", TokenKind.GT),
            ("=", TokenKind.ASSIGN),
            (";", TokenKind.SEMICOLON),
            (",", TokenKind.COMMA),
            ("(", TokenKind.LPAREN),
            (")", TokenKind.RPAREN),
            ("{", TokenKind.LBRACE),
            ("}", TokenKind.RBRACE),
            ("[", TokenKind.LBRACKET),
            ("]", TokenKind.RBRACKET),
        ],
    )
    def test_single_char_operator(self, text, kind):
        assert kinds(text)[0] is kind

    def test_maximal_munch(self):
        # `a+++b` lexes as a ++ + b, like C.
        assert kinds("a+++b")[:4] == [
            TokenKind.IDENT,
            TokenKind.PLUS_PLUS,
            TokenKind.PLUS,
            TokenKind.IDENT,
        ]

    def test_le_vs_lt_assign(self):
        assert kinds("a <= b < c =")[:6] == [
            TokenKind.IDENT,
            TokenKind.LE,
            TokenKind.IDENT,
            TokenKind.LT,
            TokenKind.IDENT,
            TokenKind.ASSIGN,
        ]


class TestComments:
    def test_line_comment(self):
        assert kinds("a // the rest is gone\nb") == [
            TokenKind.IDENT, TokenKind.IDENT, TokenKind.EOF
        ]

    def test_line_comment_at_eof(self):
        assert kinds("a // no newline") == [TokenKind.IDENT, TokenKind.EOF]

    def test_block_comment(self):
        assert kinds("a /* b c d */ e") == [
            TokenKind.IDENT, TokenKind.IDENT, TokenKind.EOF
        ]

    def test_block_comment_spanning_lines(self):
        assert kinds("a /* x\ny\nz */ b") == [
            TokenKind.IDENT, TokenKind.IDENT, TokenKind.EOF
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_propagates(self):
        tokens = tokenize("x", filename="prog.minic")
        assert tokens[0].location.filename == "prog.minic"


class TestLexErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_number_followed_by_letter(self):
        with pytest.raises(LexError):
            tokenize("123abc")

    def test_malformed_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_error_carries_location(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ab\n  @")
        assert excinfo.value.location.line == 2
