"""Dataflow and dominators on hand-built CFGs (shapes MiniC's
structured control flow cannot produce, e.g. irreducible loops)."""

from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.analysis.liveness import compute_liveness
from repro.ir.cfg import build_cfg, reverse_postorder
from repro.ir.dominators import DominatorTree
from repro.ir.function import IRFunction
from repro.ir.instructions import (
    BinOp,
    CJump,
    Imm,
    Jump,
    Move,
    PReg,
    Ret,
)
from repro.ir.loops import LoopInfo
from repro.lang.types import INT


def build_graph(edges, entry="A"):
    """Build a function whose blocks have the given edge structure.

    ``edges`` maps block name -> list of successor names (one = Jump,
    two = CJump on r0, zero = Ret).
    """
    function = IRFunction("synthetic", None, [], INT)
    blocks = {}
    order = [entry] + [name for name in edges if name != entry]
    for name in order:
        block = function.new_block("raw")
        # Rename for readability.
        del function.blocks[block.name]
        block.name = name
        function.blocks[name] = block
        blocks[name] = block
    function.entry_name = entry
    for name, successors in edges.items():
        block = blocks[name]
        if len(successors) == 0:
            block.append(Move(PReg(0), Imm(0)))
            block.append(Ret(True))
        elif len(successors) == 1:
            block.append(Jump(successors[0]))
        else:
            block.append(CJump(PReg(0), successors[0], successors[1]))
    build_cfg(function)
    return function, blocks


class TestIrreducible:
    def test_irreducible_loop_terminates(self):
        # Classic irreducible shape: A -> B, A -> C, B <-> C, C -> D.
        function, _blocks = build_graph({
            "A": ["B", "C"],
            "B": ["C"],
            "C": ["B", "D"],
            "D": [],
        })
        dom = DominatorTree(function)
        assert dom.dominates("A", "D")
        assert not dom.dominates("B", "C")
        assert not dom.dominates("C", "B")
        # No natural loop headers dominate their back edges here except
        # none exist; LoopInfo must not loop forever or invent loops
        # for the B<->C cycle (no back edge to a dominator).
        info = LoopInfo(function)
        assert info.loops == []

    def test_liveness_converges_on_cycle(self):
        function, blocks = build_graph({
            "A": ["B", "C"],
            "B": ["C"],
            "C": ["B", "D"],
            "D": [],
        })
        # r1 defined in A, used in D: live through the whole cycle.
        blocks["A"].instructions.insert(0, Move(PReg(1), Imm(5)))
        blocks["D"].instructions.insert(
            0, BinOp(PReg(0), "add", PReg(1), Imm(1))
        )
        build_cfg(function)
        liveness = compute_liveness(function)
        for name in ("B", "C"):
            assert PReg(1) in liveness.live_in[name]
            assert PReg(1) in liveness.live_out[name]


class TestDiamond:
    def test_join_dominated_only_by_fork(self):
        function, _blocks = build_graph({
            "A": ["B", "C"],
            "B": ["D"],
            "C": ["D"],
            "D": [],
        })
        dom = DominatorTree(function)
        assert dom.immediate_dominator("D") == "A"
        assert dom.dominates("A", "D")
        assert not dom.dominates("B", "D")

    def test_rpo_visits_fork_before_join(self):
        function, _blocks = build_graph({
            "A": ["B", "C"],
            "B": ["D"],
            "C": ["D"],
            "D": [],
        })
        order = [block.name for block in reverse_postorder(function)]
        assert order.index("A") < order.index("D")
        assert order.index("B") < order.index("D")
        assert order.index("C") < order.index("D")


class TestNestedLoops:
    def test_shared_header_merges_loops(self):
        # Two back edges to one header form a single natural loop.
        function, _blocks = build_graph({
            "H": ["B1", "X"],
            "B1": ["H", "B2"],
            "B2": ["H"],
            "X": [],
        }, entry="H")
        info = LoopInfo(function)
        assert len(info.loops) == 1
        assert info.loops[0].body == {"H", "B1", "B2"}

    def test_depths_of_nested(self):
        function, _blocks = build_graph({
            "O": ["I", "E"],      # outer header
            "I": ["IB", "OB"],    # inner header
            "IB": ["I"],          # inner back edge
            "OB": ["O"],          # outer back edge
            "E": [],
        }, entry="O")
        info = LoopInfo(function)
        assert info.depth_of("IB") == 2
        assert info.depth_of("I") == 2
        assert info.depth_of("OB") == 1
        assert info.depth_of("E") == 0


class TestGenericSolver:
    def test_must_analysis_meet(self):
        """A toy must-problem (intersection meet) on a diamond."""
        function, blocks = build_graph({
            "A": ["B", "C"],
            "B": ["D"],
            "C": ["D"],
            "D": [],
        })

        class Available(DataflowProblem):
            direction = "forward"
            universe = frozenset({"x", "y"})

            def initial(self):
                return self.universe

            def boundary(self):
                return frozenset()

            def meet(self, values):
                result = set(self.universe)
                for value in values:
                    result &= value
                return frozenset(result)

            def gen_kill(self, block):
                gen = {
                    "A": {"x", "y"},
                    "B": set(),
                    "C": set(),
                    "D": set(),
                }[block.name]
                kill = {"B": {"y"}}.get(block.name, set())
                return frozenset(gen), frozenset(kill)

        solution = solve_dataflow(function, Available())
        in_d, _out_d = solution["D"]
        # y was killed on the B path: only x is available at the join.
        assert in_d == frozenset({"x"})
