"""Malformed MiniC must fail with *structured* frontend errors.

Every rejection travels as a :class:`CompileError` subclass carrying a
source location — never a ``KeyError``/``AttributeError``/``IndexError``
leaking out of the lexer, parser or type checker.  The fuzz driver and
any tool embedding the compiler rely on this contract to classify
failures.
"""

import pytest

from repro.errors import ReproError
from repro.lang.errors import (
    CompileError,
    LexError,
    ParseError,
    SemanticError,
)
from repro.unified.pipeline import compile_source

LEX_CASES = [
    "int main() { int x; x = 1 @ 2; return x; }",
    "int main() { return $; }",
    'int main() { return "unsupported"; }',
]

PARSE_CASES = [
    "int main() { int ; return 0; }",
    "int main() { return 0;",
    "int main() { if return; }",
    "int main() { int x x; return 0; }",
    "int main() { int i; for (i = 0 i < 3; i = i + 1) { } return 0; }",
    "int x = ; int main() { return 0; }",
]

SEMA_CASES = [
    # Undeclared name.
    "int main() { x = 1; return 0; }",
    # Deref of a non-pointer.
    "int main() { int x; x = 0; *x = 1; return 0; }",
    # Indexing a scalar.
    "int main() { int x; x = 0; x[0] = 1; return 0; }",
    # Calling an undefined function.
    "int main() { return missing(1); }",
    # Wrong arity.
    "int f(int a) { return a; } int main() { return f(1, 2); }",
    # Duplicate local declaration.
    "int main() { int x; int x; return 0; }",
    # Global initializer that is not a constant.
    "int g; int h = g; int main() { return h; }",
    # Assigning to an array name.
    "int main() { int a[4]; int *p; p = &a[0]; a = p; return 0; }",
]


def _assert_structured(excinfo, expected_type):
    error = excinfo.value
    assert isinstance(error, expected_type)
    assert isinstance(error, CompileError)
    assert isinstance(error, ReproError)
    assert error.stage in ("lex", "parse", "sema")
    location = getattr(error, "location", None)
    assert location is not None
    assert location.line >= 1
    assert location.column >= 1
    # The rendered message leads with file:line:column.
    assert str(location) in str(error)


class TestLexErrors:
    @pytest.mark.parametrize("source", LEX_CASES)
    def test_structured(self, source):
        with pytest.raises(LexError) as excinfo:
            compile_source(source)
        _assert_structured(excinfo, LexError)


class TestParseErrors:
    @pytest.mark.parametrize("source", PARSE_CASES)
    def test_structured(self, source):
        with pytest.raises(ParseError) as excinfo:
            compile_source(source)
        _assert_structured(excinfo, ParseError)


class TestSemaErrors:
    @pytest.mark.parametrize("source", SEMA_CASES)
    def test_structured(self, source):
        with pytest.raises(SemanticError) as excinfo:
            compile_source(source)
        _assert_structured(excinfo, SemanticError)


class TestNoRawExceptions:
    """The union of all malformed inputs never leaks a raw exception."""

    @pytest.mark.parametrize(
        "source", LEX_CASES + PARSE_CASES + SEMA_CASES
    )
    def test_only_repro_errors(self, source):
        with pytest.raises(ReproError):
            compile_source(source)

    def test_cli_prints_one_clean_line(self, tmp_path, capsys):
        from repro.evalharness.cli import main_run

        bad = tmp_path / "bad.mc"
        bad.write_text("int main() { x = 1; return 0; }")
        assert main_run([str(bad)]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error [sema]:")
        assert "Traceback" not in captured.err

    def test_truncated_everywhere(self):
        """Chopping a valid program at every byte still fails cleanly."""
        source = (
            "int g = 3;\n"
            "int f(int n) { return n * g; }\n"
            "int main() { int x; x = f(2); print(x); return x; }\n"
        )
        compile_source(source)  # sanity: the full program is valid
        for cut in range(1, len(source)):
            try:
                compile_source(source[:cut])
            except ReproError:
                pass  # structured: good
            # Any other exception type propagates and fails the test.
