"""Closure-compiled VM vs the per-step reference interpreter.

The closure compiler (:meth:`Machine._compile_handlers`) resolves
operand kinds, frame offsets, jump targets, and memory fast paths at
build time; this suite runs identical modules through both loops and
demands identical observable behaviour — return value, printed
output, step count, register file, final memory, and the recorded
reference trace, bit for bit.
"""

import pytest

from repro.lang.errors import ResourceExhausted, VMError
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.machine import Machine
from repro.vm.memory import RecordingMemory
from repro.vm.reference import ReferenceMachine


def _both(source, options=None):
    program = compile_source(source, options or CompilationOptions())
    runs = []
    for cls in (Machine, ReferenceMachine):
        memory = RecordingMemory()
        vm = cls(program.module, memory=memory,
                 machine=program.options.machine)
        result = vm.run()
        runs.append((vm, memory, result))
    return runs


def assert_equivalent(source, options=None):
    (vm_a, mem_a, res_a), (vm_b, mem_b, res_b) = _both(source, options)
    assert res_a.return_value == res_b.return_value
    assert res_a.output == res_b.output
    assert res_a.steps == res_b.steps
    assert vm_a.regs == vm_b.regs
    assert mem_a.flat.words == mem_b.flat.words
    assert list(mem_a.buffer) == list(mem_b.buffer)


class TestBenchmarkEquivalence:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_benchmark(self, name):
        assert_equivalent(get_benchmark(name).source)

    @pytest.mark.parametrize("scheme", ["unified", "conventional"])
    @pytest.mark.parametrize("promotion", ["none", "aggressive"])
    def test_schemes(self, scheme, promotion):
        source = get_benchmark("intmm").source
        assert_equivalent(
            source,
            CompilationOptions(scheme=scheme, promotion=promotion),
        )


class TestFuzzedEquivalence:
    @pytest.mark.parametrize("seed", [5, 23, 47, 101])
    def test_generated_program(self, seed):
        from repro.robustness.generator import generate_program

        assert_equivalent(generate_program(seed).source)


class TestErrorEquivalence:
    LOOP = "int main() { while (1) { } return 0; }"

    def test_budget_exhaustion_agrees(self):
        program = compile_source(self.LOOP)
        for cls in (Machine, ReferenceMachine):
            vm = cls(program.module, max_steps=500)
            with pytest.raises(ResourceExhausted, match="exceeded 500 steps"):
                vm.run()
            assert vm.steps > 500

    def test_missing_entry_agrees(self):
        program = compile_source("int main() { return 0; }")
        for cls in (Machine, ReferenceMachine):
            with pytest.raises(VMError, match="no function named other"):
                cls(program.module).run("other")

    def test_instruction_sink_streams_agree(self):
        source = get_benchmark("towers").source
        program = compile_source(source)
        streams = []
        for cls in (Machine, ReferenceMachine):
            fetched = []
            vm = cls(program.module, instruction_sink=fetched.append)
            vm.run()
            streams.append(fetched)
        assert streams[0] == streams[1]
