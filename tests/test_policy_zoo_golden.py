"""Golden-file regression test pinning the E17 policy-zoo table.

``tests/golden/policyzoo.json`` pins the {policy} x {conventional,
unified} hit/miss/bus numbers for all six benchmarks at one geometry
(64 words, 4-way — small enough that replacement decisions matter).
Any change to the RRIP mechanics, the signature scheme, the OPTgen
oracle, or the kill/bypass interaction that moves a single count
fails here.

To regenerate after an *intentional* semantics change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_policy_zoo_golden.py -q

The suite also asserts that ``tests/golden/figure5.json`` is
byte-identical to its committed form after the zoo replays — the zoo
must not perturb the LRU baseline.
"""

import json
import os

import pytest

from repro.evalharness.sweeps import (
    ZOO_GEOMETRY,
    ZOO_POLICIES,
    policy_zoo_sweep,
)
from repro.programs import BENCHMARK_NAMES

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "policyzoo.json"
)
FIGURE5_GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "figure5.json"
)


def measured_table():
    table = {}
    for name in BENCHMARK_NAMES:
        rows = policy_zoo_sweep(name, base=ZOO_GEOMETRY)
        for row in rows:
            key = "{}/{}/{}".format(name, row["policy"], row["scheme"])
            table[key] = {
                "hits": row["hits"],
                "misses": row["misses"],
                "refs_cached": row["refs_cached"],
                "dead_drops": row["dead_drops"],
                "bus_words": row["bus_words"],
                "hit_rate": row["hit_rate"],
            }
    return table


@pytest.fixture(scope="module")
def measured():
    return measured_table()


def test_policy_zoo_matches_golden(measured):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        with open(GOLDEN_PATH, "w") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    # Compare exactly — replacement is deterministic integer
    # arithmetic; float equality is intentional, not a tolerance bug.
    assert measured == golden


def test_golden_covers_the_full_grid():
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    want = {
        "{}/{}/{}".format(name, policy, scheme)
        for name in BENCHMARK_NAMES
        for policy in ZOO_POLICIES
        for scheme in ("conventional", "unified")
    }
    assert set(golden) == want
    for key, values in golden.items():
        assert values["hits"] + values["misses"] == values["refs_cached"], key


def test_scheme_semantics_hold_under_every_policy():
    """Scheme invariants that follow from the honor flags, policy by
    policy: conventional ignores kill bits (no dead drops) and caches
    every reference, so the unified cached stream is never larger."""
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    for name in BENCHMARK_NAMES:
        for policy in ZOO_POLICIES:
            conv = golden["{}/{}/conventional".format(name, policy)]
            unif = golden["{}/{}/unified".format(name, policy)]
            assert conv["dead_drops"] == 0, (name, policy)
            assert unif["refs_cached"] <= conv["refs_cached"], (name, policy)


def test_figure5_golden_untouched():
    """The LRU baseline is byte-identical to the committed Figure 5
    pin — adding the zoo must not have moved it."""
    with open(FIGURE5_GOLDEN_PATH, "rb") as handle:
        raw = handle.read()
    golden = json.loads(raw)
    assert sorted(golden) == sorted(BENCHMARK_NAMES)
    # A regen writes sorted keys, 2-space indent, trailing newline;
    # anything else means the file was edited by hand or the format
    # drifted.
    expected = json.dumps(
        golden, indent=2, sort_keys=True
    ).encode() + b"\n"
    assert raw == expected
