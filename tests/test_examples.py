"""Smoke-run every shipped example so they cannot rot.

Each example is executed in-process (imported as a module and its
``main()`` called) with stdout captured; we assert on load-bearing
lines of the output.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, argv=()):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location(
        "example_" + name, path
    )
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [path] + list(argv)
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart")
        out = capsys.readouterr().out
        assert "annotated machine code" in out
        assert "UmAm_LOAD" in out or "Am_LOAD" in out
        assert "traffic reduction" in out

    def test_alias_explorer(self, capsys):
        run_example("alias_explorer")
        out = capsys.readouterr().out
        assert "figure2" in out
        assert "alias sets:" in out
        assert "points-to facts:" in out
        assert "ambiguous" in out

    def test_cache_policy_lab(self, capsys):
        run_example("cache_policy_lab", ["queen"])
        out = capsys.readouterr().out
        assert "policy x kill-bit grid" in out
        assert "min" in out

    def test_register_pressure(self, capsys):
        run_example("register_pressure")
        out = capsys.readouterr().out
        assert "spilled webs" in out
        assert "8 registers" in out

    def test_figure5_reproduction(self, capsys):
        run_example("figure5_reproduction")
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "average" in out

    @pytest.mark.slow
    def test_unified_cache_and_hybrid(self, capsys):
        run_example("unified_cache_and_hybrid")
        out = capsys.readouterr().out
        assert "instruction hit rate" in out
        assert "hybrid" in out
