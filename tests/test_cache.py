"""Cache simulator tests: geometry, policies, bypass, kill semantics."""

import pytest

from repro.cache.cache import Cache, CacheConfig


def lru_cache(**kwargs):
    defaults = dict(size_words=4, line_words=1, associativity=4, policy="lru")
    defaults.update(kwargs)
    return Cache(CacheConfig(**defaults))


class TestConfig:
    def test_num_sets(self):
        config = CacheConfig(size_words=256, line_words=4, associativity=4)
        assert config.num_sets == 16

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_words=100, line_words=4, associativity=3)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            CacheConfig(policy="belady")

    def test_rejects_unknown_kill_mode(self):
        with pytest.raises(ValueError):
            CacheConfig(kill_mode="sideways")

    def test_cache_rejects_config_plus_kwargs(self):
        with pytest.raises(TypeError):
            Cache(CacheConfig(), size_words=64)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = lru_cache()
        assert cache.access(100, False) == "miss"
        assert cache.access(100, False) == "hit"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_distinct_addresses_fill_lines(self):
        cache = lru_cache()
        for address in range(4):
            assert cache.access(address, False) == "miss"
        for address in range(4):
            assert cache.access(address, False) == "hit"

    def test_capacity_eviction(self):
        cache = lru_cache()  # 4 words, fully associative
        for address in range(5):
            cache.access(address, False)
        assert cache.stats.evictions == 1
        # Address 0 was least recently used and must be gone.
        assert cache.access(0, False) == "miss"

    def test_lru_order_updated_by_hits(self):
        cache = lru_cache()
        for address in range(4):
            cache.access(address, False)
        cache.access(0, False)  # 0 becomes most recent
        cache.access(99, False)  # evicts 1, not 0
        assert cache.access(0, False) == "hit"
        assert cache.access(1, False) == "miss"

    def test_write_makes_line_dirty_and_writeback_counts(self):
        cache = lru_cache()
        cache.access(10, True)  # write-allocate, dirty
        for address in range(4):
            cache.access(100 + address, False)  # evict everything
        assert cache.stats.writebacks == 1
        assert cache.stats.words_to_memory == 1

    def test_clean_eviction_has_no_writeback(self):
        cache = lru_cache()
        cache.access(10, False)
        for address in range(4):
            cache.access(100 + address, False)
        assert cache.stats.writebacks == 0

    def test_write_allocate_one_word_line_fetches_nothing(self):
        cache = lru_cache()
        cache.access(10, True)
        assert cache.stats.words_from_memory == 0

    def test_wide_line_fetches_whole_line(self):
        cache = Cache(CacheConfig(size_words=16, line_words=4,
                                  associativity=4))
        cache.access(10, False)
        assert cache.stats.words_from_memory == 4

    def test_wide_line_spatial_hit(self):
        cache = Cache(CacheConfig(size_words=16, line_words=4,
                                  associativity=4))
        cache.access(8, False)
        assert cache.access(9, False) == "hit"
        assert cache.access(11, False) == "hit"

    def test_set_mapping_conflicts(self):
        # Direct-mapped, 4 sets: addresses 0 and 4 collide.
        cache = Cache(CacheConfig(size_words=4, line_words=1,
                                  associativity=1))
        cache.access(0, False)
        cache.access(4, False)
        assert cache.access(0, False) == "miss"


class TestBypass:
    def test_bypass_read_miss_does_not_allocate(self):
        cache = lru_cache()
        cache.access(7, False, bypass=True)
        assert cache.stats.refs_bypassed == 1
        assert cache.stats.words_from_memory == 1
        assert cache.contents() == {}

    def test_bypass_write_goes_to_memory(self):
        cache = lru_cache()
        cache.access(7, True, bypass=True)
        assert cache.stats.words_to_memory == 1
        assert cache.contents() == {}

    def test_umam_load_hit_invalidates_clean_line(self):
        cache = lru_cache()
        cache.access(7, False)  # through cache, clean
        cache.access(7, False, bypass=True)
        assert cache.stats.probe_hits == 1
        assert cache.contents() == {}
        assert cache.stats.writebacks == 0

    def test_umam_load_hit_writes_back_dirty_line(self):
        cache = lru_cache()
        cache.access(7, True)  # dirty
        cache.access(7, False, bypass=True)
        assert cache.stats.writebacks == 1
        assert cache.stats.words_to_memory == 1  # just the write-back
        assert cache.contents() == {}

    def test_umam_load_hit_with_kill_drops_dirty_data(self):
        cache = lru_cache()
        cache.access(7, True)  # dirty
        cache.access(7, False, bypass=True, kill=True)
        assert cache.stats.writebacks == 0
        assert cache.stats.dead_drops == 1
        assert cache.contents() == {}

    def test_umam_store_invalidates_stale_copy(self):
        cache = lru_cache()
        cache.access(7, True)  # dirty copy in cache
        cache.access(7, True, bypass=True)  # newest value to memory
        assert cache.stats.probe_hits == 1
        assert cache.contents() == {}

    def test_honor_bypass_false_treats_as_cached(self):
        cache = lru_cache(honor_bypass=False)
        cache.access(7, False, bypass=True)
        assert cache.stats.refs_bypassed == 0
        assert cache.stats.refs_cached == 1
        assert 7 in cache.contents()


class TestKillBits:
    def test_kill_on_hit_frees_line(self):
        cache = lru_cache()
        cache.access(3, False)
        cache.access(3, False, kill=True)
        assert cache.stats.dead_line_frees == 1
        assert cache.contents() == {}

    def test_kill_on_miss_bypasses_fill(self):
        cache = lru_cache()
        cache.access(3, False, kill=True)
        assert cache.contents() == {}
        assert cache.stats.words_from_memory == 1

    def test_kill_dirty_line_drops_writeback(self):
        cache = lru_cache()
        cache.access(3, True)
        cache.access(3, False, kill=True)
        assert cache.stats.dead_drops == 1
        assert cache.stats.writebacks == 0

    def test_honor_kill_false_ignores_bit(self):
        cache = lru_cache(honor_kill=False)
        cache.access(3, False)
        cache.access(3, False, kill=True)
        assert 3 in cache.contents()

    def test_demote_mode_marks_preferred_victim(self):
        cache = lru_cache(kill_mode="demote")
        for address in range(4):
            cache.access(address, False)
        cache.access(0, False, kill=True)  # 0 most recent but dead
        cache.access(50, False)  # must evict the dead 0, not LRU 1
        assert cache.access(1, False) == "hit"
        assert cache.access(0, False) == "miss"

    def test_multiword_lines_never_drop_dirty(self):
        cache = Cache(CacheConfig(size_words=16, line_words=4,
                                  associativity=4))
        cache.access(0, True)
        cache.access(1, False, kill=True)  # same line; only demote
        # Filling the set evicts the dead line but must write it back.
        for base in (16, 32, 48, 64):
            cache.access(base, False)
        assert cache.stats.dead_drops == 0
        assert cache.stats.writebacks == 1

    def test_kill_frees_slot_for_next_miss(self):
        cache = lru_cache()
        for address in range(4):
            cache.access(address, False)
        cache.access(0, False, kill=True)
        cache.access(50, False)  # takes the freed slot, no eviction
        assert cache.stats.evictions == 0


class TestPolicies:
    def test_fifo_ignores_recency(self):
        cache = lru_cache(policy="fifo")
        for address in range(4):
            cache.access(address, False)
        cache.access(0, False)  # hit; FIFO order unchanged
        cache.access(99, False)  # evicts 0 (first in), not 1
        assert cache.access(0, False) == "miss"

    def test_random_policy_is_seed_deterministic(self):
        def run(seed):
            cache = lru_cache(policy="random", seed=seed)
            for address in range(64):
                cache.access(address % 7, False)
                cache.access(address, False)
            return cache.stats.as_dict()

        assert run(1) == run(1)

    def test_stats_conservation(self):
        cache = lru_cache()
        import random

        rng = random.Random(7)
        for _ in range(500):
            cache.access(
                rng.randrange(32),
                rng.random() < 0.5,
                bypass=rng.random() < 0.3,
                kill=rng.random() < 0.1,
            )
        stats = cache.stats
        assert stats.refs_total == 500
        assert stats.refs_cached + stats.refs_bypassed == 500
        assert stats.hits + stats.misses == stats.refs_cached
        assert stats.reads + stats.writes == 500
