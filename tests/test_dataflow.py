"""Dataflow framework, liveness, reaching defs, D-U chains and webs."""

from repro.lang.parser import parse_program
from repro.lang.sema import analyze
from repro.analysis.du import DefUseChains, build_webs, rename_webs
from repro.analysis.liveness import compute_liveness
from repro.analysis.reaching import compute_reaching_defs
from repro.ir.builder import build_module
from repro.ir.cfg import build_cfg
from repro.ir.instructions import Load, Move, PReg, Store, SymMem, VReg
from repro.ir.validate import verify_function


def build_function(source, name="main"):
    module = build_module(analyze(parse_program(source)))
    function = module.functions[name]
    build_cfg(function)
    return function


LOOP_SOURCE = (
    "int main() { int i; int s; s = 0; "
    "for (i = 0; i < 10; i++) s = s + i; return s; }"
)


class TestLiveness:
    def test_loop_carried_value_is_live_around_loop(self):
        function = build_function(LOOP_SOURCE)
        liveness = compute_liveness(function)
        # The condition block reads some register loaded from memory;
        # at minimum the entry block's live-out must be empty of vregs
        # (everything is memory resident before promotion).
        entry_out = liveness.live_out[function.entry_name]
        assert all(not isinstance(reg, VReg) for reg in entry_out)

    def test_arg_registers_live_into_entry(self):
        function = build_function(
            "int f(int a, int b) { return a + b; } "
            "int main() { return f(1, 2); }",
            name="f",
        )
        liveness = compute_liveness(function)
        live_in = liveness.live_in[function.entry_name]
        assert PReg(0) in live_in
        assert PReg(1) in live_in

    def test_ret_keeps_r0_live(self):
        function = build_function("int main() { return 5; }")
        liveness = compute_liveness(function)
        block = function.entry
        walked = list(liveness.walk_block_backward(block))
        # The instruction right before ret must see r0 live-after.
        _, terminator, _ = walked[0]
        assert terminator.is_terminator
        _, _move, live_after_move = walked[1]
        assert PReg(0) in live_after_move

    def test_dead_def_not_live_before(self):
        function = build_function("int main() { int x; x = 1; return 0; }")
        liveness = compute_liveness(function)
        for block in function.block_list():
            for index, instruction in enumerate(block.instructions):
                before = liveness.live_before_each(block)[index]
                for defined in instruction.defs():
                    if isinstance(defined, VReg):
                        # A value cannot be live before its only def.
                        chains = DefUseChains(function)
                        assert defined not in before or any(
                            use[2] is defined
                            for use in chains.use_to_defs
                        )

    def test_live_before_after_alignment(self):
        function = build_function(LOOP_SOURCE)
        liveness = compute_liveness(function)
        for block in function.block_list():
            befores = liveness.live_before_each(block)
            afters = liveness.live_after_each(block)
            assert len(befores) == len(afters) == len(block.instructions)


class TestDeterminism:
    def test_golden_iteration_count(self):
        # The priority worklist makes the solver's behaviour — not
        # just its fixpoint — reproducible: the loop's backward
        # liveness converges in exactly one pass over the five blocks
        # in postorder.  A change here means the traversal order or
        # requeue discipline changed, which invalidates every other
        # golden number built on top of it.
        from repro.analysis.dataflow import solve_dataflow
        from repro.analysis.liveness import _LivenessProblem

        function = build_function(LOOP_SOURCE)
        solution = solve_dataflow(function, _LivenessProblem())
        assert solution.iterations == 5
        assert solution.order == ("L3", "L2", "L4", "L1", "entry0")

    def test_solution_identical_across_runs(self):
        runs = []
        for _ in range(2):
            function = build_function(LOOP_SOURCE)
            solution = solve_dataflow_fresh(function)
            runs.append(
                (solution.iterations, solution.order, dict(solution))
            )
        assert runs[0] == runs[1]


def solve_dataflow_fresh(function):
    from repro.analysis.dataflow import solve_dataflow
    from repro.analysis.liveness import _LivenessProblem

    return solve_dataflow(function, _LivenessProblem())


class TestReachingDefs:
    def test_single_def_reaches_use(self):
        function = build_function("int main() { int x; x = 3; return x; }")
        chains = DefUseChains(function)
        # Every use with a VReg should have at least one reaching def.
        for use_site, def_sites in chains.use_to_defs.items():
            if isinstance(use_site[2], VReg):
                assert len(def_sites) >= 1

    def test_two_defs_merge_at_join(self):
        source = (
            "int main() { int x; int c; c = 1; "
            "if (c) x = 1; else x = 2; return x; }"
        )
        function = build_function(source)
        reaching = compute_reaching_defs(function)
        # The block containing the final load of x must see both stores
        # of x... but x is memory-resident; check instead on a branch
        # temp after promotion-like rewriting is out of scope here.
        assert reaching.reach_in  # analysis produced results

    def test_def_kills_previous_def(self):
        function = build_function(
            "int main() { int x; x = 1; x = 2; return x; }"
        )
        reaching = compute_reaching_defs(function)
        out = reaching.reach_out[function.entry_name]
        # Memory-resident: stores kill nothing here, but register defs of
        # the same vreg must appear at most once per register.
        regs = [site[2] for site in out]
        vregs = [reg for reg in regs if isinstance(reg, VReg)]
        assert len(vregs) == len(set(vregs))


class TestWebs:
    def test_disjoint_values_split_into_webs(self):
        # After promotion the variable x would carry two unrelated
        # values; here we simulate by promoting manually.
        from repro.analysis.alias import analyze_aliases
        from repro.regalloc.promotion import promote_scalars

        source = (
            "int main() { int x; x = 1; print(x); x = 2; print(x); "
            "return 0; }"
        )
        module = build_module(analyze(parse_program(source)))
        function = module.functions["main"]
        build_cfg(function)
        alias = analyze_aliases(module)
        symbols = [
            symbol for symbol in function.frame._offsets
            if alias.symbol_is_register_worthy(symbol)
        ]
        home = promote_scalars(function, set(symbols))
        build_cfg(function)
        webs, _ = build_webs(function)
        x_home = next(
            reg for sym, reg in home.items() if sym.name == "x"
        )
        promoted_vreg_webs = [
            web for web in webs if web.register is x_home
        ]
        assert len(promoted_vreg_webs) == 2

    def test_loop_carried_value_is_one_web(self):
        from repro.analysis.alias import analyze_aliases
        from repro.regalloc.promotion import promote_scalars

        module = build_module(analyze(parse_program(LOOP_SOURCE)))
        function = module.functions["main"]
        build_cfg(function)
        alias = analyze_aliases(module)
        symbols = {
            symbol for symbol in function.frame._offsets
            if alias.symbol_is_register_worthy(symbol)
        }
        home = promote_scalars(function, symbols)
        build_cfg(function)
        webs, _ = build_webs(function)
        s_home = next(
            reg for sym, reg in home.items() if sym.name == "s"
        )
        s_webs = [web for web in webs if web.register is s_home]
        # init + loop update + final read all belong to one value web.
        assert len(s_webs) == 1

    def test_rename_webs_keeps_verifier_happy(self):
        function = build_function(LOOP_SOURCE)
        rename_webs(function)
        verify_function(function)

    def test_rename_webs_preserves_semantics(self):
        from repro.unified.pipeline import CompilationOptions, compile_source

        source = (
            "int main() { int x; x = 10; print(x); x = 20; print(x + x); "
            "return x; }"
        )
        program = compile_source(
            source, CompilationOptions(promotion="aggressive")
        )
        result = program.run()
        assert result.output == [10, 40]
        assert result.return_value == 20
