"""Trace encoding and memory-system wrapper tests."""

from repro.ir.instructions import RefClass, RefInfo, RefOrigin, RegionKind
from repro.vm.trace import (
    FLAG_AMBIGUOUS,
    FLAG_BYPASS,
    FLAG_KILL,
    FLAG_WRITE,
    TraceBuffer,
    TraceEvent,
    encode_flags,
    origin_from_flags,
)
from repro.vm.memory import FlatMemory, RecordingMemory, StreamingMemory


def make_ref(bypass=False, kill=False, ambiguous=False,
             origin=RefOrigin.USER):
    ref = RefInfo("t", RegionKind.DIRECT, origin=origin)
    ref.ref_class = RefClass.AMBIGUOUS if ambiguous else RefClass.UNAMBIGUOUS
    ref.bypass = bypass
    ref.kill = kill
    return ref


class TestFlagEncoding:
    def test_roundtrip_all_flags(self):
        for bypass in (False, True):
            for kill in (False, True):
                for ambiguous in (False, True):
                    for origin in RefOrigin:
                        for is_write in (False, True):
                            ref = make_ref(bypass, kill, ambiguous, origin)
                            flags = encode_flags(ref, is_write)
                            event = TraceEvent.from_packed(99, flags)
                            assert event.is_write == is_write
                            assert event.bypass == bypass
                            assert event.kill == kill
                            assert event.ambiguous == ambiguous
                            assert event.origin == origin

    def test_flag_bits_disjoint(self):
        bits = [FLAG_WRITE, FLAG_BYPASS, FLAG_KILL, FLAG_AMBIGUOUS]
        for index, bit in enumerate(bits):
            for other in bits[index + 1:]:
                assert bit & other == 0

    def test_origin_from_flags(self):
        ref = make_ref(origin=RefOrigin.SPILL)
        assert origin_from_flags(encode_flags(ref, False)) is RefOrigin.SPILL


class TestTraceBuffer:
    def test_append_and_len(self):
        buffer = TraceBuffer()
        buffer.append(5, 0)
        buffer.append(6, FLAG_WRITE)
        assert len(buffer) == 2
        assert list(buffer) == [(5, 0), (6, FLAG_WRITE)]

    def test_events_view(self):
        buffer = TraceBuffer()
        buffer.append(7, FLAG_WRITE | FLAG_BYPASS)
        event = buffer.events()[0]
        assert event.address == 7
        assert event.is_write and event.bypass

    def test_events_cached_and_invalidated_on_append(self):
        buffer = TraceBuffer()
        buffer.append(7, FLAG_WRITE)
        first = buffer.events()
        assert buffer.events() is first
        buffer.append(8, 0)
        second = buffer.events()
        assert second is not first
        assert [event.address for event in second] == [7, 8]

    def test_to_columns_cached_and_invalidated_on_append(self):
        buffer = TraceBuffer()
        buffer.append(3, FLAG_KILL)
        buffer.append(4, FLAG_WRITE)
        addresses, flags = buffer.to_columns()
        assert list(addresses) == [3, 4]
        assert list(flags) == [FLAG_KILL, FLAG_WRITE]
        assert buffer.to_columns() is buffer._columns
        again = buffer.to_columns()
        assert again == buffer.to_columns()
        buffer.append(5, 0)
        addresses, flags = buffer.to_columns()
        assert list(addresses) == [3, 4, 5]
        assert list(flags) == [FLAG_KILL, FLAG_WRITE, 0]

    def test_summary_counts(self):
        buffer = TraceBuffer()
        buffer.append(1, 0)
        buffer.append(2, FLAG_WRITE)
        buffer.append(3, FLAG_BYPASS | FLAG_AMBIGUOUS)
        buffer.append(4, FLAG_KILL)
        summary = buffer.summary()
        assert summary["total"] == 4
        assert summary["reads"] == 3
        assert summary["writes"] == 1
        assert summary["bypassed"] == 1
        assert summary["killed"] == 1
        assert summary["ambiguous"] == 1
        assert summary["unambiguous"] == 3


class TestMemorySystems:
    def test_flat_memory_read_default_zero(self):
        memory = FlatMemory()
        assert memory.read(1234, make_ref()) == 0

    def test_flat_memory_write_read(self):
        memory = FlatMemory()
        memory.write(10, 99, make_ref())
        assert memory.read(10, make_ref()) == 99

    def test_recording_memory_captures_everything(self):
        memory = RecordingMemory()
        memory.write(10, 1, make_ref())
        memory.read(10, make_ref(bypass=True))
        assert len(memory.buffer) == 2
        events = list(memory.buffer.events())
        assert events[0].is_write
        assert events[1].bypass

    def test_recording_memory_is_functional(self):
        memory = RecordingMemory()
        memory.write(10, 7, make_ref())
        assert memory.read(10, make_ref()) == 7

    def test_streaming_memory_feeds_cache(self):
        from repro.cache.cache import Cache

        cache = Cache(size_words=4, associativity=4)
        memory = StreamingMemory(cache)
        memory.write(3, 1, make_ref())
        memory.read(3, make_ref())
        assert cache.stats.refs_total == 2
        assert cache.stats.hits == 1

    def test_poke_is_not_traced(self):
        memory = RecordingMemory()
        memory.poke(5, 55)
        assert len(memory.buffer) == 0
        assert memory.peek(5) == 55
