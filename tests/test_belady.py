"""Belady MIN simulator tests, including optimality versus LRU."""

import random

from repro.cache.belady import simulate_min
from repro.cache.cache import Cache, CacheConfig
from repro.cache.replay import replay_trace
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE, TraceBuffer


def make_trace(refs):
    """refs: iterable of (address, flags) pairs."""
    trace = TraceBuffer()
    for address, flags in refs:
        trace.append(address, flags)
    return trace


def reads(addresses):
    return make_trace((address, 0) for address in addresses)


class TestMinBasics:
    def test_hits_and_misses_counted(self):
        trace = reads([1, 2, 1, 2])
        stats = simulate_min(trace, size_words=4, associativity=4)
        assert stats.misses == 2
        assert stats.hits == 2

    def test_min_evicts_farthest_next_use(self):
        # Cache of 2; stream 1 2 3 1 2: MIN evicts 3... wait, at the
        # miss on 3 it evicts whichever of {1,2} is used later (2),
        # keeping 1 for its sooner reuse.
        trace = reads([1, 2, 3, 1, 2])
        stats = simulate_min(trace, size_words=2, associativity=2)
        # misses: 1, 2, 3, then 1 hits, 2 misses -> 4 misses, 1 hit.
        assert stats.misses == 4
        assert stats.hits == 1

    def test_min_beats_lru_on_looping_pattern(self):
        # Cyclic pattern over k+1 blocks with a k-block cache is LRU's
        # worst case (0% hits); MIN keeps k-1 of them resident.
        pattern = list(range(5)) * 20
        trace = reads(pattern)
        lru = replay_trace(trace, size_words=4, associativity=4,
                           policy="lru")
        best = simulate_min(trace, size_words=4, associativity=4)
        assert lru.hits == 0
        assert best.hits > 0
        assert best.misses <= lru.misses


class TestMinOptimality:
    def test_min_never_worse_than_online_policies(self):
        rng = random.Random(42)
        for trial in range(10):
            addresses = [rng.randrange(24) for _ in range(400)]
            trace = reads(addresses)
            best = simulate_min(trace, size_words=8, associativity=8)
            for policy in ("lru", "fifo", "random"):
                online = replay_trace(
                    trace, size_words=8, associativity=8, policy=policy
                )
                assert best.misses <= online.misses, (trial, policy)

    def test_min_respects_set_mapping(self):
        rng = random.Random(1)
        addresses = [rng.randrange(64) for _ in range(500)]
        trace = reads(addresses)
        best = simulate_min(trace, size_words=16, associativity=2)
        online = replay_trace(
            trace, size_words=16, associativity=2, policy="lru"
        )
        assert best.misses <= online.misses


class TestMinWithAnnotations:
    def test_bypass_references_skip_cache(self):
        trace = make_trace([(1, 0), (1, FLAG_BYPASS), (1, 0)])
        stats = simulate_min(trace, size_words=4, associativity=4)
        assert stats.refs_bypassed == 1
        # The bypass probe invalidated the line; third access misses.
        assert stats.misses == 2

    def test_kill_frees_line(self):
        trace = make_trace([(1, 0), (1, FLAG_KILL), (2, 0)])
        stats = simulate_min(trace, size_words=1, associativity=1)
        assert stats.dead_line_frees == 1
        assert stats.evictions == 0

    def test_kill_dirty_drop(self):
        trace = make_trace([(1, FLAG_WRITE), (1, FLAG_KILL)])
        stats = simulate_min(trace, size_words=4, associativity=4)
        assert stats.dead_drops == 1
        assert stats.writebacks == 0

    def test_dirty_eviction_writes_back(self):
        trace = make_trace(
            [(1, FLAG_WRITE), (2, FLAG_WRITE), (3, 0), (1, 0)]
        )
        stats = simulate_min(trace, size_words=2, associativity=2)
        assert stats.writebacks >= 1

    def test_honor_flags_off_matches_plain_min(self):
        rng = random.Random(3)
        refs = []
        for _ in range(300):
            flags = 0
            if rng.random() < 0.5:
                flags |= FLAG_WRITE
            if rng.random() < 0.2:
                flags |= FLAG_BYPASS
            refs.append((rng.randrange(16), flags))
        with_flags_off = simulate_min(
            make_trace(refs), size_words=8, associativity=8,
            honor_bypass=False, honor_kill=False,
        )
        plain = simulate_min(
            make_trace([(a, f & FLAG_WRITE) for a, f in refs]),
            size_words=8, associativity=8,
        )
        assert with_flags_off.misses == plain.misses
        assert with_flags_off.hits == plain.hits
