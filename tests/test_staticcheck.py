"""Static must/may cache analysis, annotation linter, cross-validation.

Three layers under test: the abstract domain's transfer functions
(unit tests against hand-built states), the linter (violation
injection: corrupt one annotation, the matching diagnostic must fire),
and the static/dynamic contract (every definite verdict checked
against the simulator on real executions, including the six-benchmark
acceptance gate that CI runs via ``repro-analyze --check``).
"""

import pytest

from repro.cache.cache import CacheConfig
from repro.ir.instructions import Load, RefFlavor, RegMem, Store, SymMem
from repro.staticcheck import StaticCheckError
from repro.staticcheck import absdomain as dom
from repro.staticcheck.absdomain import CacheState, CallSummary
from repro.staticcheck.crossval import cross_validate
from repro.staticcheck.linter import lint_module, lint_program
from repro.staticcheck.locations import AMBIG, STACK, may_conflict
from repro.staticcheck.mustmay import (
    Classification,
    analyze_program,
    check_geometry,
)
from repro.unified.pipeline import CompilationOptions, compile_source

CONFIG = CacheConfig(size_words=8, line_words=1, associativity=2,
                     policy="lru")  # 4 sets


def compile_none(source, scheme="unified", **kwargs):
    """Compile with promotion off so every value reference is visible."""
    return compile_source(
        source, CompilationOptions(scheme=scheme, promotion="none", **kwargs)
    )


def memory_refs(program, cls=(Load, Store)):
    """[(function, instruction)] over all memory references."""
    out = []
    for function in program.module.functions.values():
        for instruction in function.instructions():
            if isinstance(instruction, cls):
                out.append((function, instruction))
    return out


# ----------------------------------------------------------------------
# Abstract domain.
# ----------------------------------------------------------------------

G0 = ("g", 0, False)
G1 = ("g", 1, False)
G4 = ("g", 4, False)   # same set as G0 with 4 sets
GAT = ("g", 9, True)   # address-taken global


class TestAbstractDomain:
    def test_join_intersects_must_at_worst_age(self):
        a = CacheState({G0: 0, G1: 1}, frozenset([G0, G1]))
        b = CacheState({G0: 1}, frozenset([G0, G4]))
        joined = dom.join([a, b])
        assert joined.must == {G0: 1}
        assert joined.may == frozenset([G0, G1, G4])
        assert not joined.may_top

    def test_join_skips_bottom(self):
        a = CacheState({G0: 0}, frozenset([G0]))
        assert dom.join([None, a]) == a
        assert dom.join([None, None]) is None

    def test_through_access_installs_and_ages_conflicting(self):
        # G4 conflicts with G0 (same set); G1 does not.
        state = CacheState({G4: 0, G1: 0}, frozenset([G4, G1]))
        after = dom.access_through(
            state, (G0,), G0, is_write=False, kill=False,
            config=CONFIG, must_enabled=True,
        )
        assert after.must == {G0: 0, G4: 1, G1: 0}
        assert G0 in after.may and G4 in after.may

    def test_aging_evicts_at_associativity(self):
        state = CacheState({G4: 1}, frozenset([G4]))  # max age for 2-way
        after = dom.access_through(
            state, (G0,), G0, is_write=False, kill=False,
            config=CONFIG, must_enabled=True,
        )
        assert G4 not in after.must      # aged out of the must set...
        assert G4 in after.may           # ...but may still be present

    def test_kill_load_purges_without_aging(self):
        state = CacheState({G0: 0, G4: 1}, frozenset([G0, G4]))
        after = dom.access_through(
            state, (G0,), G0, is_write=False, kill=True,
            config=CONFIG, must_enabled=True,
        )
        assert G0 not in after.must and G0 not in after.may
        assert after.must[G4] == 1       # a kill load moves nobody else

    def test_kill_store_miss_can_evict_a_victim(self):
        # The concrete cache allocates-then-invalidates on a killed
        # store miss, so it can push a conflicting block out: the
        # abstract kill-store must age before purging.
        state = CacheState({G4: 1}, frozenset([G4]))
        after = dom.access_through(
            state, (G0,), G0, is_write=True, kill=True,
            config=CONFIG, must_enabled=True,
        )
        assert G4 not in after.must

    def test_bypass_removes_target_only(self):
        state = CacheState({G0: 0, G4: 1}, frozenset([G0, G4]))
        after = dom.access_bypass(state, (G0,), G0)
        assert G0 not in after.must and G0 not in after.may
        assert after.must[G4] == 1 and G4 in after.may

    def test_ambiguous_invalidation_purges_reachable(self):
        state = CacheState({G0: 0, GAT: 0}, frozenset([G0, GAT]))
        after = dom.access_bypass(state, (AMBIG,), None)
        assert GAT not in after.must     # pointer-reachable: purged
        assert after.must[G0] == 0       # unreachable word survives
        assert GAT in after.may          # weak invalidation keeps may

    def test_call_havocs_must_and_folds_summary(self):
        state = CacheState({G0: 0}, frozenset([G0]))
        summary = CallSummary(frozenset([G1]), ambig=True, stack=True)
        after = dom.apply_call(state, summary)
        assert after.must == {}
        assert {G0, G1, AMBIG, STACK} <= after.may
        assert not after.may_top
        assert dom.apply_call(state, CallSummary(top=True)).may_top

    def test_translate_entry(self, tiny_program):
        callee = tiny_program.module.functions["main"]
        frame_at = ("f", "caller", 0, True)
        frame_private = ("f", "caller", 1, False)
        state = CacheState(
            {G0: 1, frame_private: 0},
            frozenset([G0, frame_at, frame_private, STACK]),
        )
        entry = dom.translate_entry(state, callee)
        assert entry.must == {G0: 1}          # frame identities shift
        assert G0 in entry.may
        assert AMBIG in entry.may             # address-taken caller slot
        assert frame_private not in entry.may  # invisible to the callee
        # Dead deeper frames coincide with the callee's fresh frame.
        assert STACK in entry.may
        assert any(loc[0] in ("f", "fa") for loc in entry.may)

    def test_may_possible(self):
        state = CacheState({}, frozenset([GAT]))
        assert dom.may_possible(state, GAT)
        assert dom.may_possible(state, AMBIG)     # reachable member
        assert not dom.may_possible(state, G0)
        top = CacheState({}, frozenset(), may_top=True)
        assert dom.may_possible(top, G0)
        ambig = CacheState({}, frozenset([AMBIG]))
        assert dom.may_possible(ambig, GAT)
        assert not dom.may_possible(ambig, G0)    # not pointer-reachable

    def test_may_conflict(self):
        assert may_conflict(G0, G4, 4)            # 0 ≡ 4 (mod 4)
        assert not may_conflict(G0, G1, 4)
        assert may_conflict(G0, ("f", "f", 0, False), 4)   # cross-base
        assert may_conflict(G0, ("ga", 2, 4, True), 4)     # size ≥ sets
        assert not may_conflict(G0, ("ga", 1, 2, True), 4)
        assert may_conflict(G0, AMBIG, 4)
        assert may_conflict(G0, G1, 1)            # fully associative set

    def test_unsupported_geometries_rejected(self):
        with pytest.raises(StaticCheckError):
            check_geometry(CacheConfig(line_words=4))
        with pytest.raises(StaticCheckError):
            check_geometry(CacheConfig(allocate_on_write=False))
        with pytest.raises(StaticCheckError):
            check_geometry(CacheConfig(kill_mode="demote"))
        check_geometry(CacheConfig())  # the defaults are in the model


@pytest.fixture(scope="module")
def tiny_program():
    return compile_none("int main() { int x; x = 1; return x; }")


# ----------------------------------------------------------------------
# Classification.
# ----------------------------------------------------------------------

class TestClassification:
    def test_conventional_store_misses_then_load_hits(self):
        program = compile_none(
            "int main() { int x; x = 1; return x; }", scheme="conventional"
        )
        analysis = analyze_program(program, CONFIG)
        verdicts = [site.classification for site in analysis.sites]
        assert verdicts == [
            Classification.ALWAYS_MISS,   # cold cache: the store misses
            Classification.ALWAYS_HIT,    # just installed: the load hits
        ]

    def test_unified_bypass_is_always_absent(self):
        program = compile_none("int main() { int x; x = 1; return x; }")
        analysis = analyze_program(program, CONFIG)
        assert [site.bypass for site in analysis.sites] == [True, True]
        assert all(
            site.classification is Classification.ALWAYS_MISS
            for site in analysis.sites
        )

    def test_must_disabled_for_non_lru(self):
        program = compile_none(
            "int main() { int x; x = 1; return x; }", scheme="conventional"
        )
        fifo = CacheConfig(size_words=8, associativity=2, policy="fifo")
        analysis = analyze_program(program, fifo)
        verdicts = [site.classification for site in analysis.sites]
        # Always-miss (deterministic absence) survives; always-hit
        # (LRU-age reasoning) degrades to unknown.
        assert verdicts == [
            Classification.ALWAYS_MISS,
            Classification.UNKNOWN,
        ]

    def test_ambiguous_array_traffic_is_unknown(self):
        program = compile_none(
            "int a[4]; int main() { int i; i = 1; a[i] = 2; "
            "return a[i]; }",
            scheme="conventional",
        )
        analysis = analyze_program(program, CONFIG)
        array_sites = [
            s for s in analysis.sites if "[" in s.ref.access_path
        ]
        assert array_sites
        # The first array store to a cold cache is provably a miss;
        # rereads of an unknown element stay unknown.
        assert any(
            s.classification is Classification.UNKNOWN for s in array_sites
        )

    def test_static_percentages(self):
        program = compile_none("int main() { int x; x = 1; return x; }")
        analysis = analyze_program(program, CONFIG)
        assert analysis.static_classified_percent == 100.0
        assert analysis.static_bypass_percent == 100.0
        counts = analysis.counts()
        assert counts["always-miss"] == len(analysis.sites)


# ----------------------------------------------------------------------
# The linter: violation injection.
# ----------------------------------------------------------------------

def lint_kinds(program):
    return {
        violation.kind
        for violation in lint_module(program.module, program.alias)
    }


class TestLinter:
    def test_clean_programs_lint_clean(self):
        for scheme in ("unified", "conventional"):
            program = compile_none(
                "int g; int a[4];"
                "int f(int *p) { return *p; }"
                "int main() { int i; g = 1; "
                "for (i = 0; i < 4; i++) a[i] = i; "
                "return f(a) + g; }",
                scheme=scheme,
            )
            assert lint_kinds(program) == set()

    def test_flavor_missing(self):
        program = compile_none("int main() { int x; x = 1; return x; }")
        _, store = memory_refs(program, Store)[0]
        store.ref.flavor = None
        assert "flavor-missing" in lint_kinds(program)

    def test_flavor_mismatch(self):
        program = compile_none("int main() { int x; x = 1; return x; }")
        _, load = memory_refs(program, Load)[0]
        load.ref.bypass = False  # flavor stays UmAm_LOAD
        assert "flavor-mismatch" in lint_kinds(program)

    def test_bypass_ambiguous(self):
        program = compile_none(
            "int a[4]; int main() { a[1] = 2; return a[1]; }"
        )
        _, load = memory_refs(program, Load)[-1]
        assert not load.ref.bypass  # the array read goes through-cache
        load.ref.annotate(RefFlavor.UMAM_LOAD, bypass=True)
        assert "bypass-ambiguous" in lint_kinds(program)

    def test_kill_on_store(self):
        program = compile_none("int main() { int x; x = 1; return x; }")
        _, store = memory_refs(program, Store)[0]
        store.ref.kill = True
        assert "kill-on-store" in lint_kinds(program)

    def test_kill_indirect(self):
        program = compile_none(
            "int a[4]; int main() { int i; i = 0; return a[i]; }"
        )
        indirect = next(
            ins for _fn, ins in memory_refs(program, Load)
            if isinstance(ins.mem, RegMem)
        )
        indirect.ref.kill = True
        assert "kill-indirect" in lint_kinds(program)

    def test_kill_not_last_use_and_reuse_witness(self):
        program = compile_none(
            "int main() { int x; x = 1; print(x); return x; }",
            scheme="conventional",
        )
        first_load = next(
            ins for _fn, ins in memory_refs(program, Load)
            if isinstance(ins.mem, SymMem)
        )
        first_load.ref.kill = True
        kinds = lint_kinds(program)
        # The liveness fixpoint and the independent CFG walk must both
        # flag the premature kill.
        assert "kill-not-last-use" in kinds
        assert "kill-line-reused" in kinds

    def test_kill_on_global_flagged_via_exit_liveness(self):
        # Globals are live at function exit: a "last" load of g inside
        # main is still not killable.
        program = compile_none(
            "int g; int main() { g = 3; return g; }", scheme="conventional"
        )
        g_load = next(
            ins for _fn, ins in memory_refs(program, Load)
            if isinstance(ins.mem, SymMem)
            and ins.mem.symbol.name == "g"
        )
        g_load.ref.kill = True
        kinds = lint_kinds(program)
        assert "kill-line-reused" in kinds

    def test_lint_program_raises_structured_error(self):
        program = compile_none("int main() { int x; x = 1; return x; }")
        _, store = memory_refs(program, Store)[0]
        store.ref.kill = True
        with pytest.raises(StaticCheckError) as info:
            lint_program(program, raise_on_violation=True)
        assert info.value.stage == "staticcheck"


# ----------------------------------------------------------------------
# Dynamic cross-validation.
# ----------------------------------------------------------------------

class TestCrossValidation:
    def test_clean_run_validates(self):
        program = compile_none(
            "int g; int a[8];"
            "int main() { int i; int s; s = 0; "
            "for (i = 0; i < 8; i++) { a[i] = i; s = s + a[i]; } "
            "g = s; return g; }"
        )
        report = cross_validate(program, CONFIG)
        assert report.ok
        assert report.events_total > 0
        assert report.events_classified > 0
        assert 0.0 < report.dynamic_classified_percent <= 100.0
        assert report.describe_geometry() == "8w/2-way/lru"

    def test_injected_wrong_claim_is_caught(self):
        program = compile_none("int main() { int x; x = 1; return x; }")
        analysis = analyze_program(program, CONFIG)
        site = analysis.sites[0]
        assert site.classification is Classification.ALWAYS_MISS
        analysis.predictions[id(site.ref)] = Classification.ALWAYS_HIT
        report = cross_validate(program, CONFIG, analysis=analysis)
        assert not report.ok
        assert report.mismatches[0].predicted is Classification.ALWAYS_HIT
        with pytest.raises(StaticCheckError):
            cross_validate(
                program, CONFIG, analysis=analysis, raise_on_mismatch=True
            )

    def test_both_schemes_both_geometries(self):
        source = (
            "int a[16]; int g;"
            "int sum(int *p, int n) { int i; int s; s = 0; "
            "for (i = 0; i < n; i++) s = s + p[i]; return s; }"
            "int main() { int i; "
            "for (i = 0; i < 16; i++) a[i] = i * i; "
            "g = sum(a, 16); print(g); return 0; }"
        )
        for scheme in ("unified", "conventional"):
            program = compile_none(source, scheme=scheme)
            for config in (CONFIG, CacheConfig(size_words=64,
                                               associativity=2)):
                report = cross_validate(program, config)
                assert report.ok, report.mismatches


# ----------------------------------------------------------------------
# The acceptance gate: all six benchmarks, table included.
# ----------------------------------------------------------------------

class TestBenchmarkAcceptance:
    @pytest.mark.slow
    def test_repro_analyze_check_passes(self, capsys):
        from repro.staticcheck.cli import main

        assert main(["--check"]) == 0
        out = capsys.readouterr().out
        for name in ("bubble", "intmm", "puzzle", "queen", "sieve",
                     "towers"):
            assert name in out
        assert "zero lint violations, zero mismatches" in out

    def test_single_benchmark_gate(self):
        from repro.programs import get_benchmark

        program = compile_none(get_benchmark("sieve").source)
        assert lint_module(program.module, program.alias) == []
        for geometry in (CacheConfig(), CacheConfig(size_words=64,
                                                    associativity=2)):
            report = cross_validate(program, geometry)
            assert report.ok, report.mismatches
            assert report.dynamic_classified_percent >= 50.0


# ----------------------------------------------------------------------
# CLI table mode and the Figure 5 cross-check.
# ----------------------------------------------------------------------

class TestCliAndFigure5:
    def test_table_mode(self, capsys, tmp_path):
        from repro.staticcheck.cli import main

        path = tmp_path / "p.minic"
        path.write_text("int main() { int x; x = 1; return x; }")
        assert main([str(path), "--promotion", "none", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "always-miss" in out
        assert "static bypass ratio" in out
        assert "0 mismatch(es)" in out

    def test_figure5_carries_the_analysis_column(self):
        from repro.evalharness.experiment import run_benchmark
        from repro.evalharness.figure5 import Figure5Row, format_figure5

        result = run_benchmark("sieve")
        assert result.static_bypass_checked is not None
        assert result.static_bypass_agrees is True

        row = Figure5Row.from_result(result)
        rendered = format_figure5([row], include_chart=False)
        assert "static %byp (analysis)" in rendered
        assert "{:.1f}".format(row.static_bypass_checked) in rendered
