"""Memory-value liveness (last-use / kill-bit analysis) tests."""

from repro.analysis.alias import analyze_aliases
from repro.analysis.memliveness import MemoryLiveness
from repro.ir.builder import build_module
from repro.ir.cfg import build_cfg
from repro.ir.instructions import Load, SymMem
from repro.lang.parser import parse_program
from repro.lang.sema import analyze


def liveness_for(source, name="main"):
    module = build_module(analyze(parse_program(source)))
    for function in module.functions.values():
        build_cfg(function)
    alias = analyze_aliases(module)
    function = module.functions[name]
    return function, MemoryLiveness(function, module, alias)


def last_use_paths(liveness):
    return {
        load.mem.symbol.name
        for load in liveness.last_use_loads()
        if isinstance(load.mem, SymMem)
    }


class TestLastUse:
    def test_final_read_is_last_use(self):
        _function, liveness = liveness_for(
            "int main() { int x; x = 1; return x; }"
        )
        assert "x" in last_use_paths(liveness)

    def test_read_before_reread_is_not_last_use(self):
        function, liveness = liveness_for(
            "int main() { int x; int a; int b; x = 1; a = x; b = x; "
            "return a + b; }"
        )
        # The load of x feeding `a = x` must NOT be a last use; the one
        # feeding `b = x` must be.  Count kill-marked loads of x.
        killed = [
            load for load in liveness.last_use_loads()
            if isinstance(load.mem, SymMem) and load.mem.symbol.name == "x"
        ]
        all_x_loads = [
            inst
            for inst in function.instructions()
            if isinstance(inst, Load)
            and isinstance(inst.mem, SymMem)
            and inst.mem.symbol.name == "x"
        ]
        assert len(all_x_loads) == 2
        assert len(killed) == 1

    def test_redefinition_makes_previous_read_last(self):
        _function, liveness = liveness_for(
            "int main() { int x; int a; x = 1; a = x; x = 2; return x + a; }"
        )
        names = last_use_paths(liveness)
        assert "x" in names

    def test_global_never_dead_at_exit(self):
        _function, liveness = liveness_for(
            "int g; int main() { g = 1; return g; }"
        )
        # The load of g at `return g` must NOT be a last use: the
        # value survives the function (another caller could read it).
        assert "g" not in last_use_paths(liveness)

    def test_global_dead_before_redefinition(self):
        _function, liveness = liveness_for(
            "int g; int main() { int a; g = 1; a = g; g = 2; return g + a; }"
        )
        # The read feeding `a = g` happens before g is overwritten, so
        # that value of g dies there.
        assert "g" in last_use_paths(liveness)

    def test_call_keeps_global_alive(self):
        _function, liveness = liveness_for(
            "int g; void f() { g = g + 1; } "
            "int main() { int a; g = 1; a = g; f(); return a; }"
        )
        # `a = g` is followed by a call that reads g: not a last use.
        assert "g" not in last_use_paths(liveness)

    def test_address_taken_local_kept_alive_by_deref(self):
        _function, liveness = liveness_for(
            "int main() { int x; int *p; int a; x = 1; p = &x; "
            "a = x; print(*p); return a; }"
        )
        assert "x" not in last_use_paths(liveness)

    def test_loop_variable_live_around_backedge(self):
        function, liveness = liveness_for(
            "int main() { int i; int s; s = 0; "
            "for (i = 0; i < 4; i++) s = s + i; return s; }"
        )
        killed_i = [
            load for load in liveness.last_use_loads()
            if isinstance(load.mem, SymMem) and load.mem.symbol.name == "i"
        ]
        all_i_loads = [
            inst for inst in function.instructions()
            if isinstance(inst, Load) and isinstance(inst.mem, SymMem)
            and inst.mem.symbol.name == "i"
        ]
        # i is reloaded every iteration; only some of its loads (e.g. in
        # the update, where the next action is the redefining store) may
        # be last uses -- crucially not all of them.
        assert len(killed_i) < len(all_i_loads)
