"""Property suite for the set-major vectorized replay kernels.

The contract under test mirrors ``tests/test_stackdist.py`` one level
down: :func:`repro.cache.vectorized.vector_profile_pass` must rebuild
the scalar profiler's :class:`StackDistanceProfile` **bit-identically**
— same totals, same histograms, same reconstructed ``CacheStats`` for
every associativity — whether the NumPy kernel, the pure-Python twin,
or the scalar fallback ends up doing the work.  The geometry battery
deliberately includes the degenerate shapes (one set, one way, lines
wider than the address range) where segmented-scan bugs hide.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import CacheConfig
from repro.cache.replay import MinConfig, replay_trace
from repro.cache.stackdist import (
    flavor_key,
    profile_pass,
    replay_trace_sweep,
)
from repro.cache.vectorized import (
    VECTOR_ASSOC_CAP_LIMIT,
    vector_available,
    vector_profile_pass,
)
from repro.vm.trace import FLAG_KILL, FLAG_WRITE, TraceBuffer
from test_stackdist import (
    BATTERY,
    FLAG_CHOICES,
    GEOMETRIES,
    _assert_identical,
    make_trace,
    traces,
)

requires_numpy = pytest.mark.skipif(
    not vector_available(), reason="NumPy not importable"
)


class TestPropertyEquivalence:
    """Forced ``engine="vectorized"`` versus the serial replay.

    The forced engine routes unsupported specs through the same
    fallbacks as ``auto`` (fallback, never failure), so the whole
    battery — every honor_bypass/honor_kill/write_policy combination
    over every degenerate geometry — runs through one assertion.
    """

    @settings(max_examples=60, deadline=None)
    @given(events=traces)
    def test_byte_identical_across_battery(self, events):
        _assert_identical(make_trace(events), BATTERY, "vectorized")

    @settings(max_examples=30, deadline=None)
    @given(
        events=st.lists(
            st.tuples(
                st.integers(0, 100000),
                st.sampled_from(FLAG_CHOICES),
            ),
            max_size=120,
        )
    )
    def test_sparse_address_space(self, events):
        _assert_identical(make_trace(events), BATTERY, "vectorized")

    def test_degenerate_geometries_with_annotations(self):
        """One set, one way, wide lines — with bypass and kill traffic
        (the probe/mutation path) exercised deterministically."""
        events = []
        for address in (0, 3, 1, 0, 7, 3, 1, 1, 0, 5, 7, 2):
            events.append((address, 0))
            events.append((address, FLAG_WRITE))
            events.append((address, FLAG_KILL))
        trace = make_trace(events)
        degenerate = [
            CacheConfig(size_words=size, line_words=lw, associativity=assoc,
                        policy="lru", write_policy=wp)
            for size, lw, assoc in GEOMETRIES
            for wp in ("writeback", "writethrough")
        ]
        _assert_identical(trace, degenerate, "vectorized")


class TestFuzzerTraces:
    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_generated_programs_round_trip(self, seed):
        """Real compiler-emitted traces (bypass/kill annotated by the
        unified pipeline) score identically under the vector kernels."""
        from repro.robustness.generator import generate_program
        from repro.unified.pipeline import CompilationOptions, compile_source
        from repro.vm.memory import RecordingMemory

        generated = generate_program(seed)
        program = compile_source(
            generated.source,
            CompilationOptions(scheme="unified", promotion="aggressive"),
        )
        memory = RecordingMemory()
        program.run(memory=memory)
        _assert_identical(memory.buffer, BATTERY, "vectorized")


def _profile_stats(profile, assoc_cap):
    return [profile.stats_for(a).as_dict() for a in range(1, assoc_cap + 1)]


class TestKernelSelection:
    """The ``info`` side channel plus the fallback ladder."""

    FLAVOR = (1, True, True, "writeback")

    def _columns(self):
        events = [(3, 0), (5, FLAG_WRITE), (3, FLAG_KILL), (9, 0),
                  (5, 0), (3, FLAG_WRITE), (1, FLAG_KILL | FLAG_WRITE)]
        return make_trace(events).to_columns()

    @requires_numpy
    def test_numpy_kernel_reported_and_identical(self):
        columns = self._columns()
        info = {}
        got = vector_profile_pass(columns, self.FLAVOR, 4, 4, info=info)
        want = profile_pass(columns, self.FLAVOR, 4, 4)
        assert info["kernel"] == "numpy"
        assert _profile_stats(got, 4) == _profile_stats(want, 4)

    def test_python_twin_reported_and_identical(self, monkeypatch):
        import repro.cache.vectorized as vectorized

        monkeypatch.setattr(vectorized, "_np", None)
        columns = self._columns()
        info = {}
        got = vector_profile_pass(columns, self.FLAVOR, 4, 4, info=info)
        want = profile_pass(columns, self.FLAVOR, 4, 4)
        assert info["kernel"] == "python"
        assert _profile_stats(got, 4) == _profile_stats(want, 4)

    def test_oversize_assoc_cap_delegates_to_scalar(self):
        columns = self._columns()
        info = {}
        cap = VECTOR_ASSOC_CAP_LIMIT + 1
        got = vector_profile_pass(columns, self.FLAVOR, 1, cap, info=info)
        want = profile_pass(columns, self.FLAVOR, 1, cap)
        assert info["kernel"] == "stackdist"
        assert _profile_stats(got, cap) == _profile_stats(want, cap)

    def test_flavor_key_shape_matches_kernel_contract(self):
        """The dispatcher hands ``flavor_key`` tuples straight to the
        kernel; both sides must agree on the layout."""
        config = CacheConfig(size_words=16, line_words=2, associativity=2,
                             policy="lru", write_policy="writethrough")
        flavor = flavor_key(config, True, True)
        line_words, honor_bypass, honor_kill, write_policy = flavor
        assert line_words == 2
        assert write_policy == "writethrough"
        assert isinstance(honor_bypass, bool)
        assert isinstance(honor_kill, bool)


class TestDispatch:
    def test_forced_vectorized_falls_back_not_fails(self):
        """Specs outside the stack-distance model (FIFO, Random, MIN,
        demote-kill) route through the sweeps/multi core — the forced
        vector engine never raises the way ``stackdist`` does."""
        trace = make_trace([(3, 0), (5, FLAG_WRITE), (3, FLAG_KILL),
                            (5, 0), (3, 0)])
        specs = [
            CacheConfig(size_words=16, line_words=1, associativity=2,
                        policy="lru"),
            CacheConfig(size_words=16, line_words=1, associativity=2,
                        policy="fifo"),
            CacheConfig(size_words=8, line_words=1, associativity=8,
                        policy="random", seed=7),
            CacheConfig(size_words=16, line_words=1, associativity=2,
                        policy="lru", kill_mode="demote"),
            MinConfig(size_words=16, line_words=1, associativity=2),
        ]
        swept = replay_trace_sweep(trace, specs, engine="vectorized")
        for spec, got in zip(specs, swept):
            if isinstance(spec, MinConfig):
                continue  # covered by the multi-replay battery
            want = replay_trace(trace, spec)
            assert got.as_dict() == want.as_dict()

    def test_forced_vectorized_without_numpy(self, monkeypatch):
        """With NumPy gone the dispatcher still honors the forced
        engine through the pure-Python twin, bit-identically."""
        import repro.cache.vectorized as vectorized

        monkeypatch.setattr(vectorized, "_np", None)
        trace = make_trace([(a, f) for a in (0, 3, 1, 0, 3)
                            for f in (0, FLAG_WRITE, FLAG_KILL)])
        configs = [
            CacheConfig(size_words=16, line_words=1, associativity=a,
                        policy="lru")
            for a in (1, 2, 4)
        ]
        _assert_identical(trace, configs, "vectorized")

    def test_empty_trace(self):
        _assert_identical(TraceBuffer(), BATTERY, "vectorized")

    def test_env_var_selects_vectorized(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_ENGINE", "vectorized")
        trace = make_trace([(3, 0), (5, FLAG_WRITE), (3, 0)])
        config = CacheConfig(size_words=16, line_words=1, associativity=2,
                             policy="lru")
        swept = replay_trace_sweep(trace, [config])
        want = replay_trace(trace, config)
        assert swept[0].as_dict() == want.as_dict()
