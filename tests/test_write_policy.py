"""Write-policy tests: write-through and write-around variants."""

import random

import pytest

from repro.cache.cache import Cache, CacheConfig


def wt_cache(**kwargs):
    defaults = dict(size_words=4, line_words=1, associativity=4,
                    write_policy="writethrough")
    defaults.update(kwargs)
    return Cache(CacheConfig(**defaults))


class TestWriteThrough:
    def test_store_reaches_memory_immediately(self):
        cache = wt_cache()
        cache.access(5, True)
        assert cache.stats.words_to_memory == 1

    def test_lines_never_dirty(self):
        cache = wt_cache()
        cache.access(5, True)
        cache.access(5, True)
        assert cache.contents() == {5: False}

    def test_no_writebacks_ever(self):
        cache = wt_cache()
        for address in range(20):
            cache.access(address, True)
            cache.access(address, False)
        assert cache.stats.writebacks == 0

    def test_every_store_pays_bus(self):
        cache = wt_cache()
        for _ in range(7):
            cache.access(3, True)
        assert cache.stats.words_to_memory == 7

    def test_writeback_coalesces_stores(self):
        wb = Cache(CacheConfig(size_words=4, associativity=4))
        for _ in range(7):
            wb.access(3, True)
        # Dirty line still resident: nothing on the bus yet.
        assert wb.stats.words_to_memory == 0

    def test_kill_has_no_dirty_to_drop(self):
        cache = wt_cache()
        cache.access(3, True)
        cache.access(3, False, kill=True)
        assert cache.stats.dead_drops == 0
        assert cache.stats.dead_line_frees == 1

    def test_read_hits_still_work(self):
        cache = wt_cache()
        cache.access(3, True)
        assert cache.access(3, False) == "hit"

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            CacheConfig(write_policy="sideways")


class TestWriteAround:
    def test_write_miss_does_not_allocate(self):
        cache = Cache(CacheConfig(size_words=4, associativity=4,
                                  allocate_on_write=False))
        cache.access(5, True)
        assert cache.contents() == {}
        assert cache.stats.words_to_memory == 1

    def test_write_hit_still_updates_line(self):
        cache = Cache(CacheConfig(size_words=4, associativity=4,
                                  allocate_on_write=False))
        cache.access(5, False)  # allocate via read
        cache.access(5, True)
        assert cache.contents() == {5: True}

    def test_writethrough_around_combination(self):
        cache = Cache(CacheConfig(size_words=4, associativity=4,
                                  write_policy="writethrough",
                                  allocate_on_write=False))
        cache.access(5, True)
        assert cache.contents() == {}
        assert cache.stats.words_to_memory == 1


class TestEquivalenceOnReadOnlyStreams:
    def test_policies_agree_without_writes(self):
        rng = random.Random(11)
        addresses = [rng.randrange(16) for _ in range(400)]
        results = []
        for write_policy in ("writeback", "writethrough"):
            cache = Cache(CacheConfig(size_words=8, associativity=4,
                                      write_policy=write_policy))
            for address in addresses:
                cache.access(address, False)
            results.append((cache.stats.hits, cache.stats.misses,
                            cache.stats.bus_words))
        assert results[0] == results[1]

    def test_total_bus_writeback_not_worse_with_locality(self):
        # Repeated stores to a small hot set: write-back coalesces.
        rng = random.Random(12)
        refs = [(rng.randrange(4), True) for _ in range(500)]
        totals = {}
        for write_policy in ("writeback", "writethrough"):
            cache = Cache(CacheConfig(size_words=8, associativity=4,
                                      write_policy=write_policy))
            for address, is_write in refs:
                cache.access(address, is_write)
            totals[write_policy] = cache.stats.bus_words
        assert totals["writeback"] <= totals["writethrough"]
