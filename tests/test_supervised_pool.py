"""The supervised evaluation pool under injected failure.

Every supervision mechanism is pinned here with deterministic fault
plans: crashed workers retry with seeded backoff (pool and serial
lanes), a broken pool rebuilds, a hung worker is reaped by the
watchdog, an exhausted rebuild budget falls back to supervised serial
execution, a poisoned unit is quarantined as a recorded
``WorkerQuarantined`` failure (never raised past a collector), the
journal checkpoints outcomes so a killed run resumes bit-identically,
and ``KeyboardInterrupt`` propagates promptly instead of draining the
queue.  Every convergent path must land on results bit-identical to
the clean serial baseline.
"""

import time

import pytest

from repro import faultinject
from repro.errors import WorkerQuarantined
from repro.evalharness.artifacts import ArtifactCache
from repro.evalharness.parallel import (
    RETRIES_ENV,
    TIMEOUT_ENV,
    EvalUnit,
    Journal,
    Supervisor,
    pool_map,
    run_units,
    unit_fingerprint,
)


@pytest.fixture(autouse=True)
def _mask_ambient_fault_plan():
    with faultinject.fault_plan(None):
        yield


UNITS = (EvalUnit(name="towers"), EvalUnit(name="queen"))


def canonical(results):
    """Results-per-unit as plain data (None for failed units)."""
    return [
        None if batch is None else [r.as_dict() if hasattr(r, "as_dict")
                                    else _canon(r) for r in batch]
        for batch in results
    ]


def _canon(result):
    return {
        "name": result.name,
        "unified": result.unified_stats.as_dict(),
        "conventional": result.conventional_stats.as_dict(),
        "dynamic": dict(result.dynamic),
        "output": tuple(result.output),
        "steps": result.steps,
    }


@pytest.fixture(scope="module")
def artifact_root(tmp_path_factory):
    # Shared warm store so repeated attempts cost a load, not a compile.
    root = str(tmp_path_factory.mktemp("pool-artifacts"))
    with faultinject.fault_plan(None):
        cache = ArtifactCache(root)
        for unit in UNITS:
            from repro.evalharness.parallel import evaluate_unit

            evaluate_unit(unit, artifact_cache=cache)
    return root


@pytest.fixture(scope="module")
def baseline(artifact_root):
    with faultinject.fault_plan(None):
        results = run_units(
            list(UNITS), artifact_cache=ArtifactCache(artifact_root)
        )
    return canonical(results)


def fast_supervisor(**overrides):
    options = dict(backoff_base=0.01, backoff_cap=0.05, tick=0.02)
    options.update(overrides)
    return Supervisor(**options)


class TestRetries:
    def test_worker_crash_retries_in_pool(self, artifact_root, baseline):
        sup = fast_supervisor()
        with faultinject.fault_plan("seed=3,worker_crash=1.0"):
            results = run_units(
                list(UNITS), jobs=2, supervisor=sup,
                artifact_cache=ArtifactCache(artifact_root),
            )
        assert canonical(results) == baseline
        assert sup.count("retry") == len(UNITS)
        assert sup.count("quarantine") == 0

    def test_worker_crash_retries_serial(self, artifact_root, baseline):
        sup = fast_supervisor()
        with faultinject.fault_plan("seed=3,worker_crash=1.0"):
            results = run_units(
                list(UNITS), supervisor=sup,
                artifact_cache=ArtifactCache(artifact_root),
            )
        assert canonical(results) == baseline
        assert sup.count("retry") == len(UNITS)

    def test_backoff_is_seeded_and_bounded(self):
        one = Supervisor(backoff_base=0.05, backoff_cap=1.0, seed=4)
        two = Supervisor(backoff_base=0.05, backoff_cap=1.0, seed=4)
        fingerprint = unit_fingerprint(UNITS[0])
        for attempt in (1, 2, 3):
            delay = one.backoff(fingerprint, attempt)
            assert delay == two.backoff(fingerprint, attempt)
            assert 0.0 < delay <= 1.5 * one.backoff_cap

    def test_supervisor_from_environment(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "2.5")
        monkeypatch.setenv(RETRIES_ENV, "5")
        sup = Supervisor.from_environment()
        assert sup.effective_timeout() == 2.5
        assert sup.effective_attempts() == 6

    def test_plan_supplies_timeout_and_retries(self):
        sup = Supervisor()
        with faultinject.fault_plan("seed=1,timeout=3.5,retries=1"):
            assert sup.effective_timeout() == 3.5
            assert sup.effective_attempts() == 2
        assert sup.effective_timeout() is None
        assert sup.effective_attempts() == Supervisor.DEFAULT_RETRIES + 1


class TestQuarantine:
    def test_poisoned_unit_recorded_not_raised(self, artifact_root):
        sup = fast_supervisor()
        failures = []
        with faultinject.fault_plan("seed=3,poison_unit=1.0"):
            results = run_units(
                list(UNITS), jobs=2, supervisor=sup, failures=failures,
                artifact_cache=ArtifactCache(artifact_root),
            )
        assert results == [None, None]
        assert len(failures) == len(UNITS)
        for unit, record in zip(UNITS, failures):
            assert record["item"] == unit.name
            assert record["error_type"] == "WorkerQuarantined"
            assert record["stage"] == "quarantine"
            assert "attempt" in record["message"]
        assert sup.count("quarantine") == len(UNITS)

    def test_poison_raises_without_collector(self, artifact_root):
        sup = fast_supervisor()
        with faultinject.fault_plan("seed=3,poison_unit=1.0"):
            with pytest.raises(WorkerQuarantined) as caught:
                run_units(
                    [EvalUnit(name="towers")], supervisor=sup,
                    artifact_cache=ArtifactCache(artifact_root),
                )
        assert caught.value.item == "towers"
        assert caught.value.attempts == sup.effective_attempts()


class TestPoolSurvival:
    def test_pool_break_rebuilds_and_converges(self, artifact_root,
                                               baseline):
        sup = fast_supervisor()
        failures = []
        with faultinject.fault_plan("seed=3,pool_break=1.0"):
            results = run_units(
                list(UNITS), jobs=2, supervisor=sup, failures=failures,
                artifact_cache=ArtifactCache(artifact_root),
            )
        assert failures == []
        assert canonical(results) == baseline
        assert sup.count("pool-rebuild") >= 1

    def test_stalled_worker_reaped_by_watchdog(self, artifact_root,
                                               baseline):
        # Watchdog well above the honest (warm-cache) unit time, well
        # below the stall — a slow-but-healthy retry must not be reaped.
        sup = fast_supervisor(timeout=2.0)
        failures = []
        with faultinject.fault_plan(
            "seed=3,worker_stall=1.0,stall_seconds=6"
        ):
            results = run_units(
                list(UNITS), jobs=2, supervisor=sup, failures=failures,
                artifact_cache=ArtifactCache(artifact_root),
            )
        assert failures == []
        assert canonical(results) == baseline
        assert sup.count("timeout") >= 1
        assert sup.count("pool-rebuild") >= 1

    def test_serial_fallback_when_rebuild_budget_spent(self, artifact_root,
                                                       baseline):
        sup = fast_supervisor(rebuilds=0)
        failures = []
        with faultinject.fault_plan("seed=3,pool_break=1.0"):
            results = run_units(
                list(UNITS), jobs=2, supervisor=sup, failures=failures,
                artifact_cache=ArtifactCache(artifact_root),
            )
        assert failures == []
        assert canonical(results) == baseline
        assert sup.count("serial-fallback") == 1


class TestJournal:
    def test_resume_skips_completed_units(self, tmp_path, artifact_root,
                                          baseline):
        path = str(tmp_path / "journal.bin")
        first = run_units(
            list(UNITS), journal=path,
            artifact_cache=ArtifactCache(artifact_root),
        )
        assert canonical(first) == baseline
        sup = fast_supervisor()
        second = run_units(list(UNITS), journal=path, supervisor=sup)
        assert canonical(second) == baseline
        assert sup.count("journal-hit") == len(UNITS)
        assert sup.count("checkpoint") == 0

    def test_torn_tail_tolerated(self, tmp_path, artifact_root, baseline):
        path = str(tmp_path / "journal.bin")
        run_units(
            list(UNITS), journal=path,
            artifact_cache=ArtifactCache(artifact_root),
        )
        with open(path, "ab") as handle:
            handle.write(b"\xff\x00\x00\x00TORNFRAME")  # truncated frame
        journal = Journal(path)
        assert len(journal.entries) == len(UNITS)
        sup = fast_supervisor()
        results = run_units(list(UNITS), journal=journal, supervisor=sup)
        assert canonical(results) == baseline
        assert sup.count("journal-hit") == len(UNITS)

    def test_injected_interrupt_then_resume_bit_identical(
            self, tmp_path, artifact_root, baseline):
        path = str(tmp_path / "journal.bin")
        sup = fast_supervisor()
        with faultinject.fault_plan("seed=5,interrupt_after=1"):
            with pytest.raises(KeyboardInterrupt):
                run_units(
                    list(UNITS), jobs=2, journal=path, supervisor=sup,
                    artifact_cache=ArtifactCache(artifact_root),
                )
        completed = Journal(path)
        assert 1 <= len(completed.entries) < len(UNITS) + 1
        resumed = run_units(
            list(UNITS), jobs=2, journal=path,
            artifact_cache=ArtifactCache(artifact_root),
        )
        assert canonical(resumed) == baseline


def _ki_worker(payload):
    if payload == 0:
        raise KeyboardInterrupt()
    time.sleep(3)
    return payload


class TestInterruptPropagation:
    def test_pool_map_propagates_interrupt_promptly(self):
        start = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            pool_map(_ki_worker, [0, 1, 2, 3, 4, 5], jobs=2)
        # Queued payloads were cancelled, not drained: well under the
        # 3s one in-flight sleeper needs, let alone the queue's 12s.
        assert time.monotonic() - start < 2.5
