"""The N-level hierarchy layer: spec parsing, the offline scorers vs
the online chained model, and the bypass-level ablation.

The load-bearing contract is the one the differential harness also
enforces: for non-inclusive hierarchies the offline
:func:`hierarchy_stats` scorer is bit-identical, level by level, to
the online :class:`HierarchyCache` chain; for inclusive hierarchies
the L1 column is identical to the standalone L1 and the derived
local-L2 metrics stay within their definitions.  The Hypothesis
property at the bottom additionally holds the N=2 instantiation
bit-identical to an inline two-level reference chain (the pre-refactor
L1/L2 model) on fuzzer-generated traces.
"""

import random

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.cache.hierarchy import (
    HierarchyCache,
    HierarchyError,
    HierarchySpec,
    hierarchy_stats,
    parse_hierarchy,
)
from repro.cache.replay import replay_trace
from repro.errors import ReproError
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE, TraceBuffer


def make_trace(refs):
    trace = TraceBuffer()
    for address, is_write, bypass, kill in refs:
        flags = 0
        if is_write:
            flags |= FLAG_WRITE
        if bypass:
            flags |= FLAG_BYPASS
        if kill:
            flags |= FLAG_KILL
        trace.append(address, flags)
    return trace


def mixed_trace(events=4000, addresses=160, seed=42):
    """Deterministic flag-rich trace exercising every event flavor."""
    rng = random.Random(seed)
    refs = []
    for _ in range(events):
        refs.append((
            rng.randrange(addresses),
            rng.random() < 0.3,
            rng.random() < 0.2,
            rng.random() < 0.1,
        ))
    return make_trace(refs)


class TestParseHierarchy:
    def test_basic_two_level(self):
        spec = parse_hierarchy("L1:64x2,L2:512x8")
        assert [name for name, _ in spec.levels] == ["L1", "L2"]
        l1, l2 = (config for _name, config in spec.levels)
        assert (l1.size_words, l1.associativity) == (64, 2)
        assert (l2.size_words, l2.associativity) == (512, 8)
        assert spec.inclusion == "non-inclusive"
        assert spec.bypass_level == "l1"

    def test_discipline_tokens(self):
        spec = parse_hierarchy("L1:64x2,L2:512x8,inclusive,bypass=both")
        assert spec.inclusion == "inclusive"
        assert spec.bypass_level == "both"

    def test_kwargs_win_over_tokens(self):
        spec = parse_hierarchy(
            "L1:64x2,L2:512x8,inclusive,bypass=both",
            inclusion="non-inclusive",
            bypass_level="l1",
        )
        assert spec.inclusion == "non-inclusive"
        assert spec.bypass_level == "l1"

    def test_base_config_carries_through(self):
        base = CacheConfig(kill_mode="demote", write_policy="writethrough")
        spec = parse_hierarchy("L1:64x2,L2:512x8", base=base)
        for _name, config in spec.levels:
            assert config.kill_mode == "demote"
            assert config.write_policy == "writethrough"

    def test_describe_round_trip(self):
        text = "L1:64x2,L2:512x8,inclusive,bypass=both"
        spec = parse_hierarchy(text)
        again = parse_hierarchy(spec.describe())
        assert again.describe() == spec.describe()

    def test_single_level_rejected(self):
        with pytest.raises(ValueError, match="two levels"):
            parse_hierarchy("L1:64x2")

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError, match="NAME:SIZExASSOC"):
            parse_hierarchy("L1:64x2,L2:big")

    def test_bad_bypass_rejected(self):
        with pytest.raises(ValueError, match="bad bypass level"):
            parse_hierarchy("L1:64x2,L2:512x8,bypass=l3")

    def test_inclusive_needs_nested_associativity(self):
        with pytest.raises(ValueError, match="nest"):
            parse_hierarchy("L1:64x4,L2:128x2,inclusive")

    def test_inclusive_needs_nested_sets(self):
        # 32 sets inside 48 sets: 48 % 32 != 0.
        with pytest.raises(ValueError, match="nest"):
            parse_hierarchy("L1:64x2,L2:96x2,inclusive")

    def test_non_inclusive_allows_any_geometry(self):
        spec = parse_hierarchy("L1:64x4,L2:128x2")
        assert spec.inclusion == "non-inclusive"

    def test_mixed_line_words_rejected(self):
        levels = [
            ("L1", CacheConfig(size_words=64, line_words=1,
                               associativity=2)),
            ("L2", CacheConfig(size_words=512, line_words=4,
                               associativity=8)),
        ]
        with pytest.raises(ValueError, match="line_words"):
            HierarchySpec(levels)


class TestOnlineChain:
    def test_serving_level_names(self):
        spec = parse_hierarchy("L1:4x1,L2:16x2")
        chain = HierarchyCache(spec)
        assert chain.access(0, False) == "memory"
        assert chain.access(0, False) == "L1"
        # Push block 0 out of the 4-set direct-mapped L1 only.
        assert chain.access(4, False) == "memory"
        assert chain.access(0, False) == "L2"

    def test_stats_keys_are_level_names(self):
        spec = parse_hierarchy("L1:4x1,L2:16x2")
        chain = HierarchyCache(spec)
        chain.access(0, False)
        assert sorted(chain.stats()) == ["L1", "L2"]


class TestOfflineMatchesOnline:
    """Non-inclusive offline scoring == the online chain, bit for bit."""

    @pytest.mark.parametrize("bypass_level", ["l1", "both"])
    @pytest.mark.parametrize(
        "text", ["L1:16x2,L2:128x4", "L1:64x2,L2:512x8", "L1:32x4,L2:64x2"]
    )
    def test_bit_identity(self, text, bypass_level):
        trace = mixed_trace()
        spec = parse_hierarchy(text, bypass_level=bypass_level)
        offline = hierarchy_stats(trace, spec)
        online = HierarchyCache(spec)
        for address, flags in trace:
            online.access(
                address,
                bool(flags & FLAG_WRITE),
                bool(flags & FLAG_BYPASS),
                bool(flags & FLAG_KILL),
            )
        for name, stats in offline.levels:
            assert stats.as_dict() == online.stats()[name].as_dict(), (
                text, bypass_level, name,
            )

    def test_l1_equals_standalone_cache(self):
        """The hierarchy's L1 column is exactly the single-cache score
        — chaining adds levels without disturbing the paper's model."""
        trace = mixed_trace()
        spec = parse_hierarchy("L1:64x2,L2:512x8")
        offline = hierarchy_stats(trace, spec)
        standalone = replay_trace(trace, spec.levels[0][1])
        assert offline["L1"].as_dict() == standalone.as_dict()


class TestInclusiveScoring:
    @pytest.mark.parametrize("bypass_level", ["l1", "both"])
    def test_l1_matches_non_inclusive(self, bypass_level):
        trace = mixed_trace()
        inclusive = hierarchy_stats(
            trace,
            parse_hierarchy(
                "L1:64x2,L2:512x8", inclusion="inclusive",
                bypass_level=bypass_level,
            ),
        )
        chained = hierarchy_stats(
            trace,
            parse_hierarchy(
                "L1:64x2,L2:512x8", bypass_level=bypass_level
            ),
        )
        assert inclusive["L1"].as_dict() == chained["L1"].as_dict()

    @pytest.mark.parametrize("bypass_level", ["l1", "both"])
    def test_derived_metrics_within_definitions(self, bypass_level):
        trace = mixed_trace()
        row = hierarchy_stats(
            trace,
            parse_hierarchy(
                "L1:64x2,L2:512x8", inclusion="inclusive",
                bypass_level=bypass_level,
            ),
        ).as_dict()
        assert row["l2_local_hits"] >= 0
        assert 0.0 <= row["l2_local_miss_rate"] <= 1.0
        assert row["memory_bus_words"] >= 0
        assert row["l1_l2_bus_words"] >= 0


class TestBypassAblation:
    """The headline question: which level do bypassed references skip?

    A stream that re-reads bypassed blocks separates the designs: with
    ``bypass=l1`` those blocks retain their L2 locality, with
    ``bypass=both`` every re-read goes all the way to memory.
    """

    def ablation_rows(self, inclusion):
        refs = []
        # Eight hot blocks read through bypass four times each, round
        # robin, never entering L1; a little plain traffic alongside.
        for round_index in range(4):
            for block in range(8):
                refs.append((100 + block, False, True, False))
                refs.append((block, False, False, False))
        trace = make_trace(refs)
        rows = {}
        for bypass_level in ("l1", "both"):
            rows[bypass_level] = hierarchy_stats(
                trace,
                parse_hierarchy(
                    "L1:64x2,L2:512x8", inclusion=inclusion,
                    bypass_level=bypass_level,
                ),
            ).as_dict()
        return rows

    @pytest.mark.parametrize("inclusion", ["non-inclusive", "inclusive"])
    def test_bypass_both_costs_memory_traffic(self, inclusion):
        rows = self.ablation_rows(inclusion)
        assert (
            rows["both"]["memory_bus_words"]
            > rows["l1"]["memory_bus_words"]
        )

    @pytest.mark.parametrize("inclusion", ["non-inclusive", "inclusive"])
    def test_l1_column_unaffected_by_bypass_level(self, inclusion):
        """Both designs treat L1 identically — the knob only changes
        what happens below it."""
        rows = self.ablation_rows(inclusion)
        for key in ("l1_hits", "l1_misses", "l1_miss_rate"):
            assert rows["both"][key] == rows["l1"][key]


class TestAsDictShape:
    def test_reporting_row_fields(self):
        trace = mixed_trace(events=500)
        row = hierarchy_stats(
            trace, parse_hierarchy("L1:64x2,L2:512x8")
        ).as_dict()
        for key in (
            "hierarchy", "inclusion", "bypass_level", "levels",
            "l1_hits", "l1_misses", "l1_miss_rate", "l1_bus_words",
            "l2_hits", "l2_misses", "l2_miss_rate", "l2_bus_words",
            "l2_local_hits", "l2_local_miss_rate",
            "memory_bus_words", "l1_l2_bus_words",
        ):
            assert key in row, key
        assert row["hierarchy"].startswith("L1:64x2,L2:512x8")
        assert row["levels"] == ["L1", "L2"]

    def test_three_level_row_fields(self):
        trace = mixed_trace(events=500)
        row = hierarchy_stats(
            trace, parse_hierarchy("L1:16x2,L2:64x4,L3:256x8")
        ).as_dict()
        assert row["levels"] == ["L1", "L2", "L3"]
        for key in (
            "l3_hits", "l3_misses", "l3_miss_rate", "l3_bus_words",
            "l2_local_hits", "l2_local_miss_rate",
            "l3_local_hits", "l3_local_miss_rate",
            "l1_l2_bus_words", "l2_l3_bus_words", "memory_bus_words",
        ):
            assert key in row, key
        # The memory bus is the outermost level's downstream bus.
        assert row["memory_bus_words"] == row["l3_bus_words"]


class TestParseErgonomics:
    def test_duplicate_level_names_rejected(self):
        with pytest.raises(HierarchyError, match="duplicate level name"):
            parse_hierarchy("L1:64x2,L1:512x8")

    def test_duplicate_names_case_insensitive(self):
        with pytest.raises(HierarchyError, match="duplicate level name"):
            parse_hierarchy("L1:64x2,l1:512x8")

    def test_contradictory_bypass_tokens_rejected(self):
        with pytest.raises(HierarchyError, match="contradictory bypass"):
            parse_hierarchy("L1:64x2,bypass=l1,L2:512x8,bypass=both")

    def test_contradictory_inclusion_tokens_rejected(self):
        with pytest.raises(HierarchyError,
                           match="contradictory inclusion"):
            parse_hierarchy("L1:64x2,L2:512x8,inclusive,non-inclusive")

    def test_repeated_identical_tokens_allowed(self):
        spec = parse_hierarchy(
            "L1:64x2,inclusive,L2:512x8,inclusive,bypass=both,bypass=both"
        )
        assert spec.inclusion == "inclusive"
        assert spec.bypass_level == "both"

    def test_whitespace_around_tokens(self):
        spec = parse_hierarchy(
            "  L1 : 64x2 ,  L2:512x8 ,  inclusive , bypass= both "
        )
        assert [name for name, _ in spec.levels] == ["L1", "L2"]
        assert spec.inclusion == "inclusive"
        assert spec.bypass_level == "both"

    def test_errors_are_stage_tagged(self):
        with pytest.raises(HierarchyError) as excinfo:
            parse_hierarchy("L1:64x2,L1:512x8")
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ValueError)
        assert excinfo.value.stage == "hierarchy"

    def test_bad_level_policy_rejected(self):
        with pytest.raises(HierarchyError, match="bad level policy"):
            parse_hierarchy("L1:64x2,L2:512x8@optimal")

    def test_level_policy_suffix_parses(self):
        spec = parse_hierarchy("L1:64x2,L2:512x8@srrip")
        assert spec.levels[0][1].policy == "lru"
        assert spec.levels[1][1].policy == "srrip"
        assert "@srrip" in spec.describe()


class TestThreeLevels:
    def test_parse_three_levels(self):
        spec = parse_hierarchy("L1:16x2,L2:64x4,L3:256x8")
        assert [name for name, _ in spec.levels] == ["L1", "L2", "L3"]
        assert spec.bypass_levels == ("L1",)
        assert spec.bypass_level == "l1"

    def test_bypass_addressing_set(self):
        spec = parse_hierarchy("L1:16x2,L2:64x4,L3:256x8,bypass=L1+L3")
        assert spec.bypass_levels == ("L1", "L3")
        assert spec.bypass_level == "L1+L3"
        again = parse_hierarchy(spec.describe())
        assert again.bypass_levels == ("L1", "L3")

    def test_bypass_both_addresses_every_level(self):
        spec = parse_hierarchy("L1:16x2,L2:64x4,L3:256x8,bypass=both")
        assert spec.bypass_levels == ("L1", "L2", "L3")
        assert spec.bypass_level == "both"

    def test_level_configs_gate_honor_flags(self):
        spec = parse_hierarchy("L1:16x2,L2:64x4,L3:256x8,bypass=L1+L3")
        configs = spec.level_configs()
        assert [c.honor_bypass for c in configs] == [True, False, True]
        # Kills act at the innermost level only.
        assert [c.honor_kill for c in configs] == [True, False, False]

    @pytest.mark.parametrize(
        "bypass", ["l1", "both", "L1+L3", "L2"]
    )
    def test_offline_matches_online_three_levels(self, bypass):
        trace = mixed_trace()
        spec = parse_hierarchy(
            "L1:16x2,L2:64x4,L3:256x8", bypass_level=bypass
        )
        offline = hierarchy_stats(trace, spec)
        online = HierarchyCache(spec)
        for address, flags in trace:
            online.access(
                address,
                bool(flags & FLAG_WRITE),
                bool(flags & FLAG_BYPASS),
                bool(flags & FLAG_KILL),
            )
        for name, stats in offline.levels:
            assert stats.as_dict() == online.stats()[name].as_dict(), (
                bypass, name,
            )

    def test_offline_matches_online_zoo_policy_level(self):
        """Any zoo policy works at any level (here SRRIP at L2)."""
        trace = mixed_trace(events=2000)
        spec = parse_hierarchy("L1:16x2,L2:64x4@srrip,L3:256x8")
        offline = hierarchy_stats(trace, spec)
        online = HierarchyCache(spec)
        for address, flags in trace:
            online.access(
                address,
                bool(flags & FLAG_WRITE),
                bool(flags & FLAG_BYPASS),
                bool(flags & FLAG_KILL),
            )
        for name, stats in offline.levels:
            assert stats.as_dict() == online.stats()[name].as_dict(), name

    def test_inclusive_three_levels(self):
        trace = mixed_trace()
        spec = parse_hierarchy(
            "L1:16x2,L2:64x4,L3:256x8", inclusion="inclusive"
        )
        row = hierarchy_stats(trace, spec).as_dict()
        standalone = replay_trace(trace, spec.level_configs()[0])
        assert row["l1_hits"] == standalone.hits
        assert row["l2_local_hits"] >= 0
        assert row["l3_local_hits"] >= 0


def _reference_two_level(trace, l1_config, l2_config, bypass_level):
    """The pre-refactor L1/L2 model, inlined: replay L1 online, hand
    every non-hit to L2, honor bypass at L2 only under ``"both"``,
    never honor kills below L1."""
    from dataclasses import replace

    l1 = Cache(l1_config)
    l2 = Cache(replace(
        l2_config,
        honor_bypass=l2_config.honor_bypass and bypass_level == "both",
        honor_kill=False,
    ))
    for address, flags in trace:
        is_write = bool(flags & FLAG_WRITE)
        bypass = bool(flags & FLAG_BYPASS)
        kill = bool(flags & FLAG_KILL)
        if l1.access(address, is_write, bypass, kill) != "hit":
            l2.access(address, is_write, bypass, False)
    return l1.stats, l2.stats


class TestReferenceEquivalence:
    """N=2 instantiation == the pinned PR 5 two-level behavior."""

    @pytest.mark.parametrize("bypass_level", ["l1", "both"])
    def test_hypothesis_bit_identity(self, bypass_level):
        from hypothesis import given, settings, strategies as st

        ref = st.tuples(
            st.integers(min_value=0, max_value=95),
            st.booleans(), st.booleans(), st.booleans(),
        )

        @settings(max_examples=40, deadline=None)
        @given(refs=st.lists(ref, min_size=1, max_size=400))
        def property_(refs):
            trace = make_trace(refs)
            spec = parse_hierarchy(
                "L1:16x2,L2:64x4", bypass_level=bypass_level
            )
            offline = hierarchy_stats(trace, spec)
            l1_ref, l2_ref = _reference_two_level(
                trace, spec.levels[0][1], spec.levels[1][1], bypass_level
            )
            assert offline["L1"].as_dict() == l1_ref.as_dict()
            assert offline["L2"].as_dict() == l2_ref.as_dict()

        property_()
