"""Tests for Definition 1 user-name merging (deref_merge)."""

import pytest

from conftest import compile_program, run_source

from repro.ir.instructions import Load, RefClass, RegionKind, Store, SymMem

SINGLE_TARGET = """
int main() {
    int x;
    int *p;
    x = 1;
    p = &x;
    *p = *p + 41;
    print(x);
    return 0;
}
"""

TWO_TARGETS = """
int main() {
    int x;
    int y;
    int *p;
    x = 1;
    y = 2;
    if (x < y) { p = &x; } else { p = &y; }
    *p = 9;
    print(x + y);
    return 0;
}
"""


def memory_refs(program, symbol_name=None):
    refs = []
    for function in program.module.functions.values():
        for instruction in function.instructions():
            if isinstance(instruction, (Load, Store)):
                ref = instruction.ref
                if symbol_name is None or (
                    ref.region_symbol is not None
                    and getattr(ref.region_symbol, "name", None)
                    == symbol_name
                ):
                    refs.append(ref)
    return refs


class TestMerging:
    def test_single_target_deref_becomes_direct(self):
        program = compile_program(
            SINGLE_TARGET, promotion="none", merge_true_aliases=True
        )
        pointer_refs = [
            ref for ref in memory_refs(program)
            if ref.region_kind is RegionKind.POINTER
        ]
        assert pointer_refs == []

    def test_refined_classification_recovers_unambiguity(self):
        program = compile_program(
            SINGLE_TARGET, promotion="none",
            merge_true_aliases=True, refine_points_to=True,
        )
        x_refs = memory_refs(program, "x")
        assert x_refs
        assert all(ref.ref_class is RefClass.UNAMBIGUOUS for ref in x_refs)

    def test_without_merge_x_stays_ambiguous(self):
        program = compile_program(
            SINGLE_TARGET, promotion="none", refine_points_to=True
        )
        x_refs = memory_refs(program, "x")
        assert any(ref.ref_class is RefClass.AMBIGUOUS for ref in x_refs)

    def test_merged_target_becomes_promotable(self):
        program = compile_program(
            SINGLE_TARGET, promotion="aggressive",
            merge_true_aliases=True, refine_points_to=True,
        )
        # x promoted: no direct memory references to it remain.
        assert memory_refs(program, "x") == []
        assert any(
            name.startswith("x#")
            for name in program.allocation_stats["main"].promoted_symbols
        )

    def test_two_target_pointer_untouched(self):
        program = compile_program(
            TWO_TARGETS, promotion="none",
            merge_true_aliases=True, refine_points_to=True,
        )
        pointer_refs = [
            ref for ref in memory_refs(program)
            if ref.region_kind is RegionKind.POINTER
        ]
        assert pointer_refs  # still ambiguous: p has two targets

    def test_foreign_frame_local_not_redirected(self):
        source = """
        int deref(int *q) { return *q; }
        int main() {
            int x;
            x = 7;
            print(deref(&x));
            return 0;
        }
        """
        program = compile_program(
            source, promotion="none", merge_true_aliases=True
        )
        # q's target is main's local: deref() cannot address it via its
        # own frame, so the dereference must survive.
        deref_fn = program.module.functions["deref"]
        loads = [
            inst for inst in deref_fn.instructions()
            if isinstance(inst, Load) and not isinstance(inst.mem, SymMem)
        ]
        assert loads
        assert program.run().output == [7]

    def test_array_region_sharpened(self):
        source = """
        int a[8];
        int take(int *p) { return p[2]; }
        int main() { a[2] = 5; return take(a); }
        """
        program = compile_program(
            source, promotion="none", merge_true_aliases=True
        )
        take_refs = [
            inst.ref
            for inst in program.module.functions["take"].instructions()
            if isinstance(inst, (Load, Store))
            and inst.ref.region_kind is RegionKind.ARRAY
        ]
        assert take_refs
        assert take_refs[0].region_symbol.name == "a"


class TestSemantics:
    @pytest.mark.parametrize("promotion", ["none", "modest", "aggressive"])
    def test_single_target_output(self, promotion):
        result = run_source(
            SINGLE_TARGET, promotion=promotion,
            merge_true_aliases=True, refine_points_to=True,
        )
        assert result.output == [42]

    def test_two_target_output(self):
        result = run_source(
            TWO_TARGETS, merge_true_aliases=True, refine_points_to=True
        )
        assert result.output == [11]

    def test_benchmarks_unaffected(self):
        from repro.programs import get_benchmark

        for name in ("towers", "queen", "intmm"):
            bench = get_benchmark(name)
            program = compile_program(
                bench.source, promotion="aggressive",
                merge_true_aliases=True, refine_points_to=True,
            )
            assert tuple(program.run().output) == bench.expected_output

    def test_functional_cache_transparency(self):
        from repro.cache.functional import DataCachedMemory

        program = compile_program(
            SINGLE_TARGET, promotion="modest",
            merge_true_aliases=True, refine_points_to=True,
        )
        memory = DataCachedMemory(size_words=4, associativity=2)
        assert program.run(memory=memory).output == [42]
