"""The static-only hit-ratio predictor versus the cache simulator.

The predictor executes over flat memory and scores every through-cache
reference from its verdict tier alone — no cache state.  Wherever the
analysis decides every event (``exact``), its hit/miss counts must
equal the simulator's count-for-count; benchmarks with
input-dependent references are excused, never wrong.  This is the
agreement contract behind the Figure 5 static-predictor CI job.
"""

import pytest

from repro.evalharness.experiment import DEFAULT_CACHE, run_compiled
from repro.evalharness.figure5 import (
    StaticPredictorRow,
    figure5_options,
    format_static_predictor,
    static_predictor_table,
)
from repro.programs import get_benchmark
from repro.staticcheck.predictor import predict_program
from repro.unified.pipeline import CompilationOptions, compile_source

#: With promotion off, the full reference stream is visible and the
#: analysis decides these benchmarks completely at the default cache.
FULLY_DECIDED = ("bubble", "queen", "towers")

NONE_OPTIONS = CompilationOptions(scheme="unified", promotion="none")


class TestPredictorAgreement:
    @pytest.mark.parametrize("name", FULLY_DECIDED)
    def test_exact_benchmarks_match_the_simulator(self, name):
        program = compile_source(
            get_benchmark(name).source, NONE_OPTIONS
        )
        prediction = predict_program(program, DEFAULT_CACHE)
        assert prediction.exact, (
            "{} regressed: {}".format(name, prediction.describe())
        )
        stats = run_compiled(
            name, program, cache_config=DEFAULT_CACHE
        ).unified_stats
        assert prediction.hits == stats.hits
        assert prediction.misses == stats.misses
        assert prediction.refs_bypassed == stats.refs_bypassed
        assert prediction.agrees_with(stats)
        assert prediction.hit_rate == stats.hit_rate

    def test_input_dependent_benchmark_is_excused_not_wrong(self):
        # sieve's flag-array reread turns on run-time values; the
        # predictor must disqualify itself rather than guess.
        program = compile_source(
            get_benchmark("sieve").source, NONE_OPTIONS
        )
        prediction = predict_program(program, DEFAULT_CACHE)
        assert not prediction.exact
        assert prediction.unpredicted > 0
        assert "input-dependent" in prediction.describe()

    def test_figure5_table_rows_all_ok(self):
        rows = static_predictor_table(
            options=NONE_OPTIONS,
            names=("bubble", "sieve"),
        )
        by_name = {row.name: row for row in rows}
        assert by_name["bubble"].exact and by_name["bubble"].agrees
        assert not by_name["sieve"].exact
        assert all(row.ok for row in rows)
        rendered = format_static_predictor(rows)
        assert "exact, agrees" in rendered
        assert "excused" in rendered

    def test_figure5_default_options_never_disagree(self):
        # Under the figure's modest promotion, spill traffic makes the
        # footprint non-concrete: benchmarks go excused, not wrong.
        rows = static_predictor_table(
            options=figure5_options(), names=("queen",)
        )
        assert all(row.ok for row in rows)

    def test_exact_disagreement_is_a_failure(self):
        row = StaticPredictorRow(
            name="synthetic", predicted_hits=10, predicted_misses=0,
            simulated_hits=9, simulated_misses=1, exact=True,
        )
        assert not row.agrees
        assert not row.ok
        assert "DISAGREES" in format_static_predictor([row])
