"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.unified.pipeline import CompilationOptions, compile_source

#: Every (scheme, promotion) combination the pipeline supports; used to
#: assert that program semantics are identical across all of them.
ALL_CONFIGS = [
    ("unified", "none"),
    ("unified", "modest"),
    ("unified", "aggressive"),
    ("conventional", "none"),
    ("conventional", "modest"),
    ("conventional", "aggressive"),
]


def compile_program(source, scheme="unified", promotion="modest", **kwargs):
    """Compile MiniC source with the given pipeline configuration."""
    options = CompilationOptions(scheme=scheme, promotion=promotion, **kwargs)
    return compile_source(source, options)


def run_source(source, scheme="unified", promotion="modest", memory=None,
               **kwargs):
    """Compile and execute; returns the ExecutionResult."""
    program = compile_program(source, scheme, promotion, **kwargs)
    return program.run(memory=memory)


def outputs(source, **kwargs):
    """Compile, run, and return just the printed values."""
    return run_source(source, **kwargs).output


@pytest.fixture
def compile_run():
    return run_source
