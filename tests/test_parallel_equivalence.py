"""The equivalence battery: parallel engine == serial path, bitwise.

Every route through the compile-once/trace-once engine — the
multi-config replay, the artifact-cache cold and warm paths, and the
process-pool fan-out — must produce results bit-identical to the
serial ``run_benchmark`` baseline, on all six benchmarks.
"""

import pytest

from repro import faultinject
from repro.cache.cache import CacheConfig
from repro.cache.replay import MinConfig, replay_trace, replay_trace_multi
from repro.evalharness.artifacts import ArtifactCache
from repro.evalharness.experiment import (
    DEFAULT_CACHE,
    evaluate_trace_multi,
    run_benchmark,
)
from repro.evalharness.figure5 import figure5_table, format_figure5
from repro.evalharness.parallel import EvalUnit, evaluate_unit, run_units
from repro.evalharness.sweeps import _trace_for
from repro.programs import BENCHMARK_NAMES


def canonical(result):
    """Everything measurable about an ExperimentResult, as plain data."""
    return {
        "name": result.name,
        "unified": result.unified_stats.as_dict(),
        "conventional": result.conventional_stats.as_dict(),
        "dynamic": dict(result.dynamic),
        "output": tuple(result.output),
        "steps": result.steps,
        "static_percent_unambiguous": result.static_percent_unambiguous,
        "static_bypass_checked": result.static_bypass_checked,
        "cache_traffic_reduction": result.cache_traffic_reduction,
        "bus_traffic_reduction": result.bus_traffic_reduction,
    }


@pytest.fixture(scope="module")
def artifact_cache(tmp_path_factory):
    return ArtifactCache(str(tmp_path_factory.mktemp("artifacts")))


@pytest.fixture(scope="module")
def serial_results():
    return {name: run_benchmark(name) for name in BENCHMARK_NAMES}


class TestEngineEqualsSerial:
    def test_artifact_cold_and_warm_paths(self, serial_results,
                                          artifact_cache):
        for name in BENCHMARK_NAMES:
            cold = run_benchmark(name, artifact_cache=artifact_cache)
            warm = run_benchmark(name, artifact_cache=artifact_cache)
            assert canonical(cold) == canonical(serial_results[name]), name
            assert canonical(warm) == canonical(serial_results[name]), name
        if faultinject.active_plan() is None:
            # Under an ambient REPRO_FAULT_PLAN (the chaos CI job) the
            # hit count depends on the injection schedule — corrupted
            # entries quarantine into recorded misses.  Equivalence
            # above is the invariant; the counter is only meaningful
            # on a clean run.
            assert artifact_cache.hits >= len(BENCHMARK_NAMES)

    def test_evaluate_unit_matches_serial(self, serial_results,
                                          artifact_cache):
        for name in BENCHMARK_NAMES:
            unit = EvalUnit(name=name)
            direct = evaluate_unit(unit)
            cached = evaluate_unit(unit, artifact_cache=artifact_cache)
            assert canonical(direct[0]) == canonical(serial_results[name])
            assert canonical(cached[0]) == canonical(serial_results[name])

    def test_run_units_pool_matches_serial(self, serial_results,
                                           artifact_cache):
        units = [EvalUnit(name=name) for name in BENCHMARK_NAMES]
        pooled = run_units(units, jobs=2, artifact_cache=artifact_cache)
        for name, results in zip(BENCHMARK_NAMES, pooled):
            assert len(results) == 1
            assert canonical(results[0]) == canonical(serial_results[name])

    def test_multi_geometry_unit_matches_per_geometry_serial(
            self, artifact_cache):
        geometries = (
            DEFAULT_CACHE,
            CacheConfig(size_words=64, line_words=1, associativity=2,
                        policy="lru"),
        )
        unit = EvalUnit(name="towers", cache_configs=geometries)
        multi = evaluate_unit(unit, artifact_cache=artifact_cache)
        for geometry, result in zip(geometries, multi):
            serial = run_benchmark("towers", cache_config=geometry)
            assert canonical(result) == canonical(serial)

    def test_failure_is_recorded_not_raised(self):
        failures = []
        results = run_units(
            [EvalUnit(name="towers"), EvalUnit(name="no-such-benchmark")],
            failures=failures,
        )
        assert results[0] is not None and results[1] is None
        assert len(failures) == 1
        assert failures[0]["item"] == "no-such-benchmark"

    def test_failure_propagates_without_failures_list(self):
        with pytest.raises(Exception):
            run_units([EvalUnit(name="no-such-benchmark")])


class TestReplayLevelEquivalence:
    """Serial replay vs multi-config replay on every benchmark trace."""

    @pytest.fixture(scope="class")
    def traces(self):
        return {
            name: _trace_for(name)[0]
            for name in BENCHMARK_NAMES
        }

    def test_all_policies_all_benchmarks(self, traces):
        configs = [
            CacheConfig(size_words=256, line_words=1, associativity=4,
                        policy="lru"),
            CacheConfig(size_words=256, line_words=1, associativity=4,
                        policy="fifo"),
            CacheConfig(size_words=256, line_words=1, associativity=4,
                        policy="random", seed=12345),
            CacheConfig(size_words=64, line_words=1, associativity=2,
                        policy="lru", honor_bypass=False, honor_kill=False),
        ]
        for name, trace in traces.items():
            serial = [replay_trace(trace, config) for config in configs]
            min_serial = replay_trace(
                trace, policy="min", size_words=256, associativity=4
            )
            multi = replay_trace_multi(
                trace,
                configs + [MinConfig(size_words=256, associativity=4)],
            )
            for expect, got in zip(serial + [min_serial], multi):
                assert got.as_dict() == expect.as_dict(), name

    def test_evaluate_trace_multi_matches_evaluate_trace(self,
                                                         artifact_cache):
        from repro.programs import get_benchmark
        from repro.evalharness.figure5 import figure5_options

        bench = get_benchmark("queen")
        artifact = artifact_cache.resolve(
            bench.name, bench.source, figure5_options(),
            expected_output=bench.expected_output,
        )
        geometries = (
            DEFAULT_CACHE,
            CacheConfig(size_words=128, line_words=1, associativity=4,
                        policy="fifo"),
        )
        multi = evaluate_trace_multi(
            bench.name, artifact.program, artifact.trace, artifact.output,
            artifact.steps, geometries,
        )
        for geometry, result in zip(geometries, multi):
            serial = run_benchmark(
                "queen", options=figure5_options(), cache_config=geometry
            )
            assert canonical(result) == canonical(serial)


class TestFigure5ByteIdentical:
    """The acceptance check: the rendered Figure 5 text is identical."""

    def test_parallel_figure5_text(self, artifact_cache):
        serial = format_figure5(figure5_table())
        parallel = format_figure5(
            figure5_table(jobs=2, artifact_cache=artifact_cache)
        )
        warm = format_figure5(
            figure5_table(jobs=2, artifact_cache=artifact_cache)
        )
        assert parallel == serial
        assert warm == serial
