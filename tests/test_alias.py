"""Alias analysis tests: points-to, alias sets, classification.

Includes the paper's Figure 2 example (compile-time unsolvable
aliasing) as a regression case: every element reference of the array
must land in one ambiguous alias set.
"""

from repro.lang.parser import parse_program
from repro.lang.sema import analyze
from repro.analysis.alias import analyze_aliases
from repro.ir.builder import build_module
from repro.ir.cfg import build_cfg
from repro.ir.instructions import Load, RefClass, Store


def build_with_alias(source, refine=False):
    module = build_module(analyze(parse_program(source)))
    for function in module.functions.values():
        build_cfg(function)
    return module, analyze_aliases(module, refine_points_to=refine)


def classify_map(module, alias):
    """{access_path: RefClass} over all memory references."""
    result = {}
    for function in module.functions.values():
        for instruction in function.instructions():
            if isinstance(instruction, (Load, Store)):
                ref = instruction.ref
                result[ref.access_path] = alias.classify(ref)
    return result


def find_global(module, name):
    for symbol in module.globals:
        if symbol.name == name:
            return symbol
    raise KeyError(name)


class TestPointsTo:
    def test_pointer_to_global_array(self):
        module, alias = build_with_alias(
            "int a[8]; int f(int *p) { return p[0]; } "
            "int main() { return f(a); }"
        )
        param = module.functions["f"].params[0]
        regions = alias.points_to[param]
        assert ("array", find_global(module, "a")) in regions

    def test_pointer_to_two_arrays(self):
        module, alias = build_with_alias(
            "int a[4]; int b[4];"
            "int f(int *p) { return *p; }"
            "int main() { int x; x = f(a); return x + f(b); }"
        )
        param = module.functions["f"].params[0]
        names = {region[1].name for region in alias.points_to[param]}
        assert names == {"a", "b"}

    def test_pointer_copy_propagates(self):
        module, alias = build_with_alias(
            "int a[4]; int main() { int *p; int *q; p = a; q = p; "
            "return *q; }"
        )
        q = next(
            symbol for symbol in module.functions["main"].frame._offsets
            if symbol.name == "q"
        )
        assert {region[1].name for region in alias.points_to[q]} == {"a"}

    def test_pointer_arithmetic_keeps_region(self):
        module, alias = build_with_alias(
            "int a[8]; int main() { int *p; p = a + 3; return *(p - 1); }"
        )
        p = next(
            symbol for symbol in module.functions["main"].frame._offsets
            if symbol.name == "p"
        )
        assert {region[1].name for region in alias.points_to[p]} == {"a"}

    def test_pointer_through_return_value(self):
        module, alias = build_with_alias(
            "int a[4];"
            "int *pick() { return a; }"
            "int main() { int *p; p = pick(); return *p; }"
        )
        p = next(
            symbol for symbol in module.functions["main"].frame._offsets
            if symbol.name == "p"
        )
        assert {region[1].name for region in alias.points_to[p]} == {"a"}

    def test_address_of_scalar_in_points_to(self):
        module, alias = build_with_alias(
            "int main() { int x; int *p; p = &x; *p = 3; return x; }"
        )
        p = next(
            symbol for symbol in module.functions["main"].frame._offsets
            if symbol.name == "p"
        )
        assert {region[0] for region in alias.points_to[p]} == {"scalar"}


class TestClassification:
    def test_plain_scalar_unambiguous(self):
        module, alias = build_with_alias(
            "int main() { int x; x = 1; return x; }"
        )
        classes = classify_map(module, alias)
        assert all(
            cls is RefClass.UNAMBIGUOUS for cls in classes.values()
        )

    def test_array_refs_ambiguous(self):
        module, alias = build_with_alias(
            "int a[4]; int main() { a[1] = 2; return a[1]; }"
        )
        classes = classify_map(module, alias)
        array_refs = {
            path: cls for path, cls in classes.items() if "[" in path
        }
        assert array_refs
        assert all(cls is RefClass.AMBIGUOUS for cls in array_refs.values())

    def test_address_taken_scalar_ambiguous(self):
        module, alias = build_with_alias(
            "int main() { int x; int *p; p = &x; *p = 1; return x; }"
        )
        classes = classify_map(module, alias)
        x_path = next(path for path in classes if path.startswith("x#"))
        assert classes[x_path] is RefClass.AMBIGUOUS

    def test_pointer_variable_itself_unambiguous(self):
        module, alias = build_with_alias(
            "int a[4]; int main() { int *p; p = a; return *p; }"
        )
        classes = classify_map(module, alias)
        p_path = next(path for path in classes if path.startswith("p#"))
        assert classes[p_path] is RefClass.UNAMBIGUOUS

    def test_global_scalar_unambiguous(self):
        module, alias = build_with_alias(
            "int g; int main() { g = 3; return g; }"
        )
        classes = classify_map(module, alias)
        g_path = next(path for path in classes if path.startswith("g#"))
        assert classes[g_path] is RefClass.UNAMBIGUOUS

    def test_deref_always_ambiguous(self):
        module, alias = build_with_alias(
            "int a[4]; int f(int *p) { return *p; } "
            "int main() { return f(a); }"
        )
        classes = classify_map(module, alias)
        deref_path = next(path for path in classes if path.startswith("*"))
        assert classes[deref_path] is RefClass.AMBIGUOUS

    def test_refined_classification_of_unreferenced_address(self):
        # &x is taken but the pointer is never dereferenced: the
        # conservative answer is ambiguous, the refined one unambiguous.
        source = (
            "int main() { int x; int *p; x = 1; p = &x; "
            "if (p == 0) x = 2; return x; }"
        )
        module, conservative = build_with_alias(source)
        classes = classify_map(module, conservative)
        x_path = next(path for path in classes if path.startswith("x#"))
        assert classes[x_path] is RefClass.AMBIGUOUS

        module2, refined = build_with_alias(source, refine=True)
        classes2 = classify_map(module2, refined)
        x_path2 = next(path for path in classes2 if path.startswith("x#"))
        assert classes2[x_path2] is RefClass.UNAMBIGUOUS

    def test_register_worthiness(self):
        module, alias = build_with_alias(
            "int g; int a[4];"
            "int main() { int x; int y; int *p; p = &y; *p = 1; "
            "x = 2; return x + y + g + a[0]; }"
        )
        frame_symbols = {
            symbol.name: symbol
            for symbol in module.functions["main"].frame._offsets
        }
        assert alias.symbol_is_register_worthy(frame_symbols["x"])
        assert not alias.symbol_is_register_worthy(frame_symbols["y"])
        assert not alias.symbol_is_register_worthy(find_global(module, "g"))


class TestClassificationEdgeCases:
    """classify() in the corners the linter leans on: addresses that
    escape through calls, pointers retargeted between call sites, and
    the refine_points_to sharpening."""

    def test_address_taken_local_escapes_via_call(self):
        # &x never dereferenced in main -- but it escapes into f,
        # which writes through it.  x must stay ambiguous in main.
        module, alias = build_with_alias(
            "int f(int *p) { *p = 5; return 0; }"
            "int main() { int x; x = 1; f(&x); return x; }"
        )
        param = module.functions["f"].params[0]
        assert {region[0] for region in alias.points_to[param]} == {"scalar"}
        classes = classify_map(module, alias)
        x_path = next(path for path in classes if path.startswith("x#"))
        assert classes[x_path] is RefClass.AMBIGUOUS

    def test_escaped_address_stays_ambiguous_under_refinement(self):
        # Same escape, refine_points_to=True: the pointer *is*
        # dereferenced (in the callee), so refinement must not recover
        # x as unambiguous the way it does for a never-used address.
        module, alias = build_with_alias(
            "int f(int *p) { return *p; }"
            "int main() { int x; x = 1; f(&x); return x; }",
            refine=True,
        )
        classes = classify_map(module, alias)
        x_path = next(path for path in classes if path.startswith("x#"))
        assert classes[x_path] is RefClass.AMBIGUOUS

    def test_parameter_retargeted_across_call_sites(self):
        # f is called once with a and once with b: its parameter's
        # points-to set is the union, and *p aliases both arrays.
        module, alias = build_with_alias(
            "int a[4]; int b[4];"
            "int f(int *p) { return *p; }"
            "int main() { return f(a) + f(b); }"
        )
        param = module.functions["f"].params[0]
        names = {region[1].name for region in alias.points_to[param]}
        assert names == {"a", "b"}
        sets = alias.alias_sets()
        merged = [
            s for s in sets
            if any(n.startswith("*p#") for n in s.names)
            and any(n.startswith("a#") for n in s.names)
            and any(n.startswith("b#") for n in s.names)
        ]
        assert len(merged) == 1

    def test_local_pointer_reassigned_between_uses(self):
        # Flow-insensitive points-to: after p = a; ... p = b; the set
        # is {a, b} at every program point, and every *p is ambiguous.
        module, alias = build_with_alias(
            "int a[4]; int b[4];"
            "int main() { int *p; int x; p = a; x = *p; p = b; "
            "return x + *p; }"
        )
        p = next(
            symbol for symbol in module.functions["main"].frame._offsets
            if symbol.name == "p"
        )
        assert {region[1].name for region in alias.points_to[p]} == {"a", "b"}
        classes = classify_map(module, alias)
        deref_paths = [path for path in classes if path.startswith("*p")]
        assert deref_paths
        assert all(
            classes[path] is RefClass.AMBIGUOUS for path in deref_paths
        )

    def test_refinement_with_mixed_addresses(self):
        # Two address-taken locals: &x flows into a dereferenced
        # pointer, &y is compared and discarded.  Refinement must
        # split them -- x ambiguous, y recovered as unambiguous.
        source = (
            "int main() { int x; int y; int *p; int *q; "
            "x = 1; y = 2; p = &x; q = &y; "
            "if (q == 0) y = 3; return *p + y; }"
        )
        module, refined = build_with_alias(source, refine=True)
        classes = classify_map(module, refined)
        x_path = next(path for path in classes if path.startswith("x#"))
        y_path = next(path for path in classes if path.startswith("y#"))
        assert classes[x_path] is RefClass.AMBIGUOUS
        assert classes[y_path] is RefClass.UNAMBIGUOUS


class TestAliasSets:
    def test_figure2_example(self):
        # read(i, j); a[i+j] = a[i] + a[j];  -- the paper's Figure 2.
        module, alias = build_with_alias(
            "int a[16];"
            "int main() { int i; int j; i = 3; j = 5; "
            "a[i + j] = a[i] + a[j]; return a[8]; }"
        )
        sets = alias.alias_sets()
        array_sets = [s for s in sets if any("a#" in n for n in s.names)]
        assert len(array_sets) == 1
        assert array_sets[0].ambiguous

    def test_singleton_scalar_sets_unambiguous(self):
        _module, alias = build_with_alias(
            "int main() { int x; int y; x = 1; y = 2; return x + y; }"
        )
        sets = alias.alias_sets()
        for alias_set in sets:
            assert len(alias_set) == 1
            assert not alias_set.ambiguous

    def test_uniqueness_property(self):
        # Paper Section 4.1.1.2: each name is in exactly one alias set.
        _module, alias = build_with_alias(
            "int a[4]; int b[4];"
            "int f(int *p, int *q) { return *p + *q; }"
            "int main() { int x; int *r; r = &x; *r = 1; "
            "return f(a, b) + x; }"
        )
        sets = alias.alias_sets()
        seen = set()
        for alias_set in sets:
            for name in alias_set.names:
                assert name not in seen
                seen.add(name)

    def test_completeness_property(self):
        # Every scalar/array name appears in some set.
        module, alias = build_with_alias(
            "int g; int a[4]; int main() { int x; x = g + a[0]; return x; }"
        )
        sets = alias.alias_sets()
        all_names = set()
        for alias_set in sets:
            all_names.update(alias_set.names)
        assert any(name.startswith("g#") for name in all_names)
        assert any(name.startswith("a#") for name in all_names)
        assert any(name.startswith("x#") for name in all_names)

    def test_deref_merged_with_target(self):
        _module, alias = build_with_alias(
            "int a[4]; int main() { int *p; p = a; return *p; }"
        )
        sets = alias.alias_sets()
        merged = [
            s for s in sets
            if any(n.startswith("*p#") for n in s.names)
            and any("a#" in n for n in s.names)
        ]
        assert len(merged) == 1

    def test_two_pointers_same_target_share_set(self):
        _module, alias = build_with_alias(
            "int a[4]; int main() { int *p; int *q; p = a; q = a; "
            "return *p + *q; }"
        )
        sets = alias.alias_sets()
        both = [
            s for s in sets
            if any(n.startswith("*p#") for n in s.names)
            and any(n.startswith("*q#") for n in s.names)
        ]
        assert len(both) == 1
