"""Property suite for the one-pass stack-distance sweep engine.

The contract under test: for every supported LRU configuration,
:func:`repro.cache.stackdist.replay_trace_sweep` reconstructs
``CacheStats`` **byte-identically** to the serial reference replay
(:func:`repro.cache.replay.replay_trace` driving ``Cache.access``
event by event).  Hypothesis supplies adversarial traces — every flag
combination, tiny address ranges that alias heavily, instruction bits
— and the battery of geometries includes the degenerate shapes (one
set, one way, fully associative, lines wider than the address range)
where stacking bugs hide.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import CacheConfig
from repro.cache.replay import MinConfig, replay_trace
from repro.cache.stackdist import (
    _flag_presence,
    flavor_key,
    replay_trace_sweep,
    supports_stackdist,
)
from repro.vm.trace import (
    FLAG_AMBIGUOUS,
    FLAG_BYPASS,
    FLAG_INSTRUCTION,
    FLAG_KILL,
    FLAG_WRITE,
    TraceBuffer,
)

#: Geometries chosen to cover every structural edge: one set, one way,
#: a single fully-associative set, direct-mapped many-set, multi-word
#: lines, and lines wider than the whole generated address range.
GEOMETRIES = (
    (1, 1, 1),      # the single-line cache
    (2, 2, 1),      # one set, one way, two-word line
    (4, 1, 4),      # one fully-associative set
    (16, 1, 2),     # 8 sets, 2-way
    (16, 4, 1),     # direct-mapped, 4-word lines
    (64, 1, 4),     # the Figure 5 ladder shape
    (8, 8, 1),      # line wider than the small address ranges below
)


def lru_battery():
    configs = []
    for size, lw, assoc in GEOMETRIES:
        for honor_bypass in (True, False):
            for honor_kill in (True, False):
                for write_policy in ("writeback", "writethrough"):
                    configs.append(
                        CacheConfig(
                            size_words=size,
                            line_words=lw,
                            associativity=assoc,
                            policy="lru",
                            honor_bypass=honor_bypass,
                            honor_kill=honor_kill,
                            write_policy=write_policy,
                        )
                    )
    return configs


BATTERY = lru_battery()

#: Every flag byte the VM can emit (modulo origin bits, which replay
#: ignores): read/write × bypass × kill, plus ambiguity and
#: instruction-fetch markers to prove they never perturb the math.
FLAG_CHOICES = [
    w | b | k
    for w in (0, FLAG_WRITE)
    for b in (0, FLAG_BYPASS)
    for k in (0, FLAG_KILL)
] + [FLAG_AMBIGUOUS, FLAG_WRITE | FLAG_AMBIGUOUS, FLAG_INSTRUCTION | 0x10]


def make_trace(events):
    buffer = TraceBuffer()
    for address, flags in events:
        buffer.append(address, flags)
    return buffer


def _assert_identical(trace, configs, engine):
    swept = replay_trace_sweep(trace, configs, engine=engine)
    for config, got in zip(configs, swept):
        want = replay_trace(trace, config)
        assert got.as_dict() == want.as_dict(), (
            engine,
            config,
            {
                key: (want.as_dict()[key], got.as_dict()[key])
                for key in want.as_dict()
                if want.as_dict()[key] != got.as_dict()[key]
            },
        )


def assert_sweep_matches_serial(trace, configs, engine=None):
    """Forced stackdist on every supported config, auto on the lot.

    A config can be outside the one-pass model for this particular
    trace (a kill bit with multi-word lines, say); those only run
    through the auto path, which is also the harness default.
    """
    if engine is not None:
        _assert_identical(trace, configs, engine)
        return
    has_bypass, has_kill = _flag_presence(trace.to_columns())
    supported = [
        config
        for config in configs
        if supports_stackdist(config, has_bypass, has_kill)
    ]
    if supported:
        _assert_identical(trace, supported, "stackdist")
    _assert_identical(trace, configs, "auto")


traces = st.lists(
    st.tuples(st.integers(0, 40), st.sampled_from(FLAG_CHOICES)),
    max_size=300,
)


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(events=traces)
    def test_byte_identical_across_battery(self, events):
        trace = make_trace(events)
        assert_sweep_matches_serial(trace, BATTERY)

    @settings(max_examples=30, deadline=None)
    @given(
        events=st.lists(
            st.tuples(
                st.integers(0, 100000),
                st.sampled_from(FLAG_CHOICES),
            ),
            max_size=120,
        )
    )
    def test_sparse_address_space(self, events):
        trace = make_trace(events)
        assert_sweep_matches_serial(trace, BATTERY)

    @settings(max_examples=25, deadline=None)
    @given(
        events=traces,
        seed=st.integers(0, 2**16),
    )
    def test_auto_engine_mixed_specs(self, events, seed):
        """auto mode merges stackdist and fallback results in order."""
        trace = make_trace(events)
        specs = [
            CacheConfig(size_words=16, line_words=1, associativity=2,
                        policy="lru"),
            CacheConfig(size_words=16, line_words=1, associativity=2,
                        policy="fifo"),
            MinConfig(size_words=16, line_words=1, associativity=2),
            CacheConfig(size_words=8, line_words=1, associativity=8,
                        policy="random", seed=seed),
            CacheConfig(size_words=64, line_words=1, associativity=4,
                        policy="lru", write_policy="writethrough"),
        ]
        swept = replay_trace_sweep(trace, specs, engine="auto")
        for spec, got in zip(specs, swept):
            if isinstance(spec, MinConfig):
                continue  # covered by the multi-replay battery
            want = replay_trace(trace, spec)
            assert got.as_dict() == want.as_dict()


class TestFuzzerTraces:
    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_generated_programs_round_trip(self, seed):
        """Real compiler-emitted traces (bypass/kill annotated by the
        unified pipeline) agree between the two engines."""
        from repro.robustness.generator import generate_program
        from repro.unified.pipeline import CompilationOptions, compile_source
        from repro.vm.memory import RecordingMemory

        generated = generate_program(seed)
        program = compile_source(
            generated.source,
            CompilationOptions(scheme="unified", promotion="aggressive"),
        )
        memory = RecordingMemory()
        program.run(memory=memory)
        assert_sweep_matches_serial(memory.buffer, BATTERY)


class TestEngineContract:
    def test_empty_trace(self):
        assert_sweep_matches_serial(TraceBuffer(), BATTERY)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep engine"):
            replay_trace_sweep(TraceBuffer(), BATTERY, engine="belady")

    def test_forced_stackdist_rejects_fifo(self):
        config = CacheConfig(size_words=16, line_words=1, associativity=2,
                             policy="fifo")
        with pytest.raises(ValueError, match="cannot profile"):
            replay_trace_sweep(TraceBuffer(), [config], engine="stackdist")

    def test_forced_multi_matches_serial(self):
        trace = make_trace([(3, 0), (5, FLAG_WRITE), (3, FLAG_KILL)])
        assert_sweep_matches_serial(trace, BATTERY, engine="multi")

    def test_env_var_selects_engine(self, monkeypatch):
        config = CacheConfig(size_words=16, line_words=1, associativity=2,
                             policy="fifo")
        monkeypatch.setenv("REPRO_SWEEP_ENGINE", "stackdist")
        with pytest.raises(ValueError, match="cannot profile"):
            replay_trace_sweep(TraceBuffer(), [config])
        monkeypatch.setenv("REPRO_SWEEP_ENGINE", "auto")
        replay_trace_sweep(TraceBuffer(), [config])

    def test_supports_gating(self):
        lru = CacheConfig(size_words=16, line_words=1, associativity=2,
                          policy="lru")
        fifo = CacheConfig(size_words=16, line_words=1, associativity=2,
                           policy="fifo")
        demote = CacheConfig(size_words=16, line_words=1, associativity=2,
                             policy="lru", kill_mode="demote")
        wide_kill = CacheConfig(size_words=16, line_words=2, associativity=2,
                                policy="lru")
        assert supports_stackdist(lru, True, True)
        assert not supports_stackdist(fifo, False, False)
        # Demote-mode kills fall back only when the trace has kills.
        assert supports_stackdist(demote, True, False)
        assert not supports_stackdist(demote, True, True)
        # Multi-word invalidation kills are out of the model too.
        assert not supports_stackdist(wide_kill, False, True)
        assert supports_stackdist(wide_kill, False, False)

    def test_flavor_key_normalizes_absent_flags(self):
        """honor_* only matters when the trace carries the bit, so
        flavors collapse and share passes when the bits are absent."""
        honoring = CacheConfig(size_words=16, line_words=1, associativity=2,
                               policy="lru")
        blind = CacheConfig(size_words=16, line_words=1, associativity=2,
                            policy="lru", honor_bypass=False,
                            honor_kill=False)
        assert flavor_key(honoring, False, False) == flavor_key(
            blind, False, False
        )
        assert flavor_key(honoring, True, True) != flavor_key(
            blind, True, True
        )
