"""Golden-file regression tests pinning E16 (hierarchy) and E18
(multi-core shared LLC).

``tests/golden/hierarchy.json`` pins every
:func:`~repro.evalharness.sweeps.hierarchy_sweep` row — all six
benchmarks, both inclusion disciplines, both legacy bypass levels —
for the two-level E16 geometry *and* the three-level variant, so the
N-level refactor (and anything after it) is held to the exact numbers
the fixed L1/L2 implementation produced.  ``tests/golden/multicore.json``
pins the E18 kill-vs-partitioning grid on the default intmm+sieve
pairing under both quota policies.

To regenerate after an *intentional* semantics change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_hierarchy_golden.py -q

The ambient ``REPRO_SWEEP_ENGINE`` selects the sweep engine for the
offline hierarchy scoring; all engines must reproduce the same golden
file exactly (CI runs the matrix).
"""

import json
import os

import pytest

from repro.evalharness.sweeps import (
    DEFAULT_HIERARCHY,
    DEFAULT_HIERARCHY3,
    hierarchy_sweep,
    multicore_sweep,
)
from repro.programs import BENCHMARK_NAMES

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
HIERARCHY_GOLDEN = os.path.join(GOLDEN_DIR, "hierarchy.json")
MULTICORE_GOLDEN = os.path.join(GOLDEN_DIR, "multicore.json")

MULTICORE_NAMES = ("intmm", "sieve")


def _round_floats(value):
    """Stabilize float repr across JSON round-trips (12 significant
    decimal places is far beyond any legitimate drift)."""
    if isinstance(value, float):
        return round(value, 12)
    if isinstance(value, dict):
        return {key: _round_floats(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(item) for item in value]
    return value


def measured_hierarchy():
    table = {}
    for spec in (DEFAULT_HIERARCHY, DEFAULT_HIERARCHY3):
        for name in BENCHMARK_NAMES:
            for row in hierarchy_sweep(name, hierarchy=spec):
                key = "|".join([
                    spec, name, row["inclusion"], row["bypass_level"],
                ])
                table[key] = _round_floats(row)
    return table


def measured_multicore():
    table = {}
    for partition in ("umon", "even"):
        for row in multicore_sweep(MULTICORE_NAMES, partition=partition):
            key = "|".join([
                "+".join(MULTICORE_NAMES), partition, row["config"],
            ])
            table[key] = _round_floats(row)
    return table


def _check(measured, path):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        with open(path, "w") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
    with open(path) as handle:
        golden = json.load(handle)
    assert measured == golden


@pytest.mark.slow
def test_hierarchy_matches_golden():
    _check(measured_hierarchy(), HIERARCHY_GOLDEN)


@pytest.mark.slow
def test_multicore_matches_golden():
    _check(measured_multicore(), MULTICORE_GOLDEN)


def test_hierarchy_golden_covers_both_specs():
    with open(HIERARCHY_GOLDEN) as handle:
        golden = json.load(handle)
    specs = {key.split("|")[0] for key in golden}
    assert specs == {DEFAULT_HIERARCHY, DEFAULT_HIERARCHY3}
    names = {key.split("|")[1] for key in golden}
    assert names == set(BENCHMARK_NAMES)
    # 2 specs x 6 benchmarks x 2 inclusions x 2 bypass levels.
    assert len(golden) == 48


def test_multicore_golden_covers_grid():
    with open(MULTICORE_GOLDEN) as handle:
        golden = json.load(handle)
    configs = {key.split("|")[2] for key in golden}
    assert configs == {
        "shared", "partitioned", "kill", "kill+partitioned"
    }
    assert len(golden) == 8
    for row in golden.values():
        assert row["events"] > 0
        assert 0.0 <= row["shared_hit_rate"] <= 1.0
