"""Tests for the extra Stanford workloads (quicksort, perm)."""

import pytest

from conftest import compile_program

from repro.programs import EXTRA_BENCHMARK_NAMES, get_benchmark
from repro.programs import extras


class TestReferenceOracles:
    def test_quicksort_sorted_flag(self):
        out = extras.quicksort_reference(60)
        assert out[2] == 1
        assert out[0] <= out[1]

    def test_quicksort_matches_bubble_checksum(self):
        # Same generator, same checksum definition: sorting the same
        # data must produce identical outputs to the bubble oracle.
        from repro.programs import bubble

        assert extras.quicksort_reference(200) == bubble.reference_output(200)

    def test_perm_counts(self):
        # pctr follows the recurrence a(n) = n*a(n-1) + 1.
        assert extras.perm_reference(1) == [1]
        assert extras.perm_reference(2) == [3]
        assert extras.perm_reference(3) == [10]
        assert extras.perm_reference(4) == [41]

    def test_perm_paper_scale_value(self):
        # Stanford Perm.c checks pctr == 8660 after permute(7).
        assert extras.perm_reference(7) == [8660]


@pytest.mark.parametrize("name", EXTRA_BENCHMARK_NAMES)
@pytest.mark.parametrize("promotion", ["none", "modest", "aggressive"])
class TestCompiled:
    def test_matches_reference(self, name, promotion):
        bench = get_benchmark(name)
        program = compile_program(bench.source, promotion=promotion)
        assert tuple(program.run().output) == bench.expected_output

    def test_conventional_scheme(self, name, promotion):
        bench = get_benchmark(name)
        program = compile_program(bench.source, scheme="conventional",
                                  promotion=promotion)
        assert tuple(program.run().output) == bench.expected_output


class TestRegistry:
    def test_extras_not_in_figure5_set(self):
        from repro.programs import BENCHMARK_NAMES

        for name in EXTRA_BENCHMARK_NAMES:
            assert name not in BENCHMARK_NAMES

    def test_error_message_mentions_extras(self):
        with pytest.raises(KeyError, match="quicksort"):
            get_benchmark("nope")

    def test_quicksort_in_sweeps(self):
        from repro.evalharness.sweeps import cache_size_sweep

        rows = cache_size_sweep("quicksort", sizes=(128,))
        assert rows[0]["cache_traffic_reduction"] > 0
