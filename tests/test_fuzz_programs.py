"""Statement-level compiler fuzzing with hypothesis.

Generates small straight-line/branching MiniC programs over a fixed
set of scalar variables alongside a Python model, and checks that the
compiled program (at a random promotion level and scheme) produces the
model's outputs.  This exercises the whole pipeline — lowering,
promotion, webs, coloring, annotation, VM — against an independent
semantic oracle.
"""

from hypothesis import given, settings, strategies as st

from conftest import compile_program

VARS = ("a", "b", "c", "d")


def c_div(x, y):
    q = abs(x) // abs(y)
    if (x < 0) != (y < 0):
        q = -q
    return q


def c_mod(x, y):
    return x - c_div(x, y) * y


@st.composite
def simple_exprs(draw, depth=0):
    """(text, eval_fn) pairs over VARS; total functions, no div by 0."""
    choice = draw(st.integers(0, 3 if depth < 2 else 1))
    if choice == 0:
        value = draw(st.integers(-20, 20))
        text = str(value) if value >= 0 else "(0 - {})".format(-value)
        return text, (lambda env, v=value: v)
    if choice == 1:
        name = draw(st.sampled_from(VARS))
        return name, (lambda env, n=name: env[n])
    op = draw(st.sampled_from(["+", "-", "*"]))
    left_text, left_fn = draw(simple_exprs(depth=depth + 1))
    right_text, right_fn = draw(simple_exprs(depth=depth + 1))
    ops = {
        "+": lambda x, y: x + y,
        "-": lambda x, y: x - y,
        "*": lambda x, y: x * y,
    }
    fn = ops[op]
    return (
        "({} {} {})".format(left_text, op, right_text),
        lambda env, f=fn, lf=left_fn, rf=right_fn: f(lf(env), rf(env)),
    )


@st.composite
def statements(draw, depth=0):
    """(minic_text, apply_fn) where apply_fn mutates env and output."""
    kind = draw(st.integers(0, 3 if depth < 1 else 1))
    if kind == 0:
        target = draw(st.sampled_from(VARS))
        expr_text, expr_fn = draw(simple_exprs())

        def assign(env, output, t=target, f=expr_fn):
            env[t] = f(env)

        return "{} = {};".format(target, expr_text), assign
    if kind == 1:
        expr_text, expr_fn = draw(simple_exprs())

        def emit(env, output, f=expr_fn):
            output.append(f(env))

        return "print({});".format(expr_text), emit
    if kind == 2:
        cond_text, cond_fn = draw(simple_exprs())
        then_text, then_fn = draw(statements(depth=depth + 1))
        else_text, else_fn = draw(statements(depth=depth + 1))

        def branch(env, output, c=cond_fn, t=then_fn, e=else_fn):
            if c(env) != 0:
                t(env, output)
            else:
                e(env, output)

        text = "if ({}) {{ {} }} else {{ {} }}".format(
            cond_text, then_text, else_text
        )
        return text, branch
    # A bounded counted loop over a fresh loop variable.
    iterations = draw(st.integers(0, 4))
    body_text, body_fn = draw(statements(depth=depth + 1))

    def loop(env, output, n=iterations, b=body_fn):
        for _ in range(n):
            b(env, output)

    text = (
        "for (loopv = 0; loopv < {}; loopv = loopv + 1) {{ {} }}"
        .format(iterations, body_text)
    )
    return text, loop


@st.composite
def programs(draw):
    count = draw(st.integers(1, 6))
    parts = []
    fns = []
    for _ in range(count):
        text, fn = draw(statements())
        parts.append(text)
        fns.append(fn)
    body = "\n    ".join(parts)
    source = (
        "int main() {\n"
        "    int a; int b; int c; int d; int loopv;\n"
        "    a = 0; b = 0; c = 0; d = 0;\n"
        "    " + body + "\n"
        "    print(a + b + c + d);\n"
        "    return 0;\n"
        "}\n"
    )
    env = {name: 0 for name in VARS}
    output = []
    for fn in fns:
        fn(env, output)
    output.append(sum(env[name] for name in VARS))
    return source, output


class TestProgramFuzzing:
    @given(
        program=programs(),
        promotion=st.sampled_from(["none", "modest", "aggressive"]),
        scheme=st.sampled_from(["unified", "conventional"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_compiled_matches_model(self, program, promotion, scheme):
        source, expected = program
        compiled = compile_program(source, scheme=scheme,
                                   promotion=promotion)
        assert compiled.run().output == expected

    @given(program=programs())
    @settings(max_examples=20, deadline=None)
    def test_functional_cache_matches_model(self, program):
        from repro.cache.functional import DataCachedMemory

        source, expected = program
        compiled = compile_program(source, scheme="unified",
                                   promotion="modest")
        memory = DataCachedMemory(size_words=4, associativity=2)
        assert compiled.run(memory=memory).output == expected
