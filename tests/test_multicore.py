"""The multi-core shared-LLC layer: deterministic interleaving, SWP
way partitioning, the UMON utility monitor, and the E18 grid.

The load-bearing properties: the interleaver is a pure function of
``(traces, seed, chunk)`` (same seed, byte-identical merged stream);
each core's private L1 behaves exactly as it would standalone (the
interleave must not perturb per-core state); the partitioned policy
converges to its quotas and never lets an at-quota core victimize a
neighbour; and the four E18 cells replay the identical contention
schedule.
"""

import random

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.cache.hierarchy import HierarchyError
from repro.cache.multicore import (
    MULTICORE_CONFIGS,
    PartitionedLRUPolicy,
    even_partition,
    interleave_traces,
    multicore_grid,
    simulate_multicore,
    utility_curves,
    utility_partition,
)
from repro.cache.replay import replay_trace
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE, TraceBuffer

L1 = CacheConfig(size_words=16, line_words=1, associativity=2)
SHARED = CacheConfig(size_words=64, line_words=1, associativity=8)


def synth_trace(events=800, addresses=48, seed=0, bypass=0.2, kill=0.1):
    rng = random.Random(seed)
    trace = TraceBuffer()
    for _ in range(events):
        flags = 0
        if rng.random() < 0.3:
            flags |= FLAG_WRITE
        if rng.random() < bypass:
            flags |= FLAG_BYPASS
        if rng.random() < kill:
            flags |= FLAG_KILL
        trace.append(rng.randrange(addresses), flags)
    return trace


class TestInterleaver:
    def test_same_seed_byte_identical(self):
        traces = [synth_trace(seed=1), synth_trace(seed=2)]
        first = interleave_traces(traces, seed=7, chunk=8)
        second = interleave_traces(traces, seed=7, chunk=8)
        assert first.tobytes() == second.tobytes()

    def test_seed_changes_schedule(self):
        traces = [synth_trace(seed=1), synth_trace(seed=2)]
        assert (
            interleave_traces(traces, seed=0).tobytes()
            != interleave_traces(traces, seed=1).tobytes()
        )

    def test_every_event_once_in_core_order(self):
        traces = [synth_trace(seed=1, events=333),
                  synth_trace(seed=2, events=500),
                  synth_trace(seed=3, events=90)]
        merged = interleave_traces(traces, seed=3, chunk=5)
        assert len(merged) == sum(len(t) for t in traces)
        assert merged.counts == tuple(len(t) for t in traces)
        positions = [0] * len(traces)
        for core, address, flags in merged:
            src = traces[core]
            index = positions[core]
            assert address == src.addresses[index]
            assert flags == src.flags[index]
            positions[core] = index + 1
        assert positions == [len(t) for t in traces]

    def test_hypothesis_determinism(self):
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=30, deadline=None)
        @given(
            lengths=st.lists(
                st.integers(min_value=0, max_value=60),
                min_size=1, max_size=4,
            ),
            seed=st.integers(min_value=0, max_value=2**32 - 1),
            chunk=st.integers(min_value=1, max_value=9),
        )
        def property_(lengths, seed, chunk):
            traces = []
            for core, length in enumerate(lengths):
                trace = TraceBuffer()
                for index in range(length):
                    trace.append(core * 1000 + index,
                                 (core + index) % 8)
                traces.append(trace)
            first = interleave_traces(traces, seed=seed, chunk=chunk)
            second = interleave_traces(traces, seed=seed, chunk=chunk)
            assert first.tobytes() == second.tobytes()
            assert len(first) == sum(lengths)

        property_()

    def test_rejects_empty_and_bad_chunk(self):
        with pytest.raises(HierarchyError, match="at least one trace"):
            interleave_traces([])
        with pytest.raises(HierarchyError, match="chunk"):
            interleave_traces([synth_trace()], chunk=0)


class TestPartitionedPolicy:
    def set_up(self, quotas):
        # One 8-way set so every block contends.
        config = CacheConfig(size_words=8, line_words=1, associativity=8)
        policy = PartitionedLRUPolicy(quotas)
        return Cache(config, policy=policy), policy

    def occupancy(self, policy):
        counts = {}
        for _block, line in policy.entries():
            owner = line[7]  # _PART_OWNER
            counts[owner] = counts.get(owner, 0) + 1
        return counts

    def test_converges_to_quotas(self):
        cache, policy = self.set_up((6, 2))
        # Core 0 floods the set (free fills go beyond its quota)...
        policy.core = 0
        for block in range(8):
            cache.access(block, False)
        assert self.occupancy(policy) == {0: 8}
        # ...then core 1 reclaims exactly the over-quota lines.
        policy.core = 1
        for block in range(100, 102):
            cache.access(block, False)
        assert self.occupancy(policy) == {0: 6, 1: 2}

    def test_at_quota_core_victimizes_itself(self):
        cache, policy = self.set_up((6, 2))
        policy.core = 0
        for block in range(8):
            cache.access(block, False)
        policy.core = 1
        cache.access(100, False)
        cache.access(101, False)
        # Core 1 is at quota now; its next install must not touch
        # core 0's lines.
        cache.access(102, False)
        occupancy = self.occupancy(policy)
        assert occupancy == {0: 6, 1: 2}
        assert cache.probe(100) is False  # its own LRU line went

    def test_quota_zero_core_still_runs(self):
        cache, policy = self.set_up((8, 0))
        policy.core = 0
        for block in range(8):
            cache.access(block, False)
        policy.core = 1
        cache.access(100, False)  # evicts someone else's line, no crash
        occupancy = self.occupancy(policy)
        assert occupancy[1] == 1

    def test_dead_lines_preferred_within_partition(self):
        config = CacheConfig(size_words=8, line_words=1, associativity=8,
                             kill_mode="demote")
        policy = PartitionedLRUPolicy((6, 2))
        cache = Cache(config, policy=policy)
        policy.core = 0
        for block in range(6):
            cache.access(block, False)
        # Touch block 3 with a kill: demoted dead, but MRU by stamp.
        cache.access(3, False, False, True)
        policy.core = 1
        cache.access(100, False)
        cache.access(101, False)
        policy.core = 0
        cache.access(200, False)  # full set; own dead line must go
        assert cache.probe(3) is False
        assert cache.probe(0) is True  # LRU but alive — spared

    def test_quotas_must_sum_to_associativity(self):
        config = CacheConfig(size_words=8, line_words=1, associativity=8)
        with pytest.raises(HierarchyError, match="sum to the associativity"):
            Cache(config, policy=PartitionedLRUPolicy((4, 2)))


class TestUtilityMonitor:
    def test_curves_monotone_and_bounded(self):
        traces = [synth_trace(seed=1), synth_trace(seed=2)]
        curves = utility_curves(traces, L1, SHARED)
        assert len(curves) == 2
        for curve in curves:
            assert len(curve) == SHARED.associativity + 1
            assert curve[0] == 0
            assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_partition_sums_and_favours_utility(self):
        # Core 0 gains 10 hits per way, core 1 is flat: greedy must
        # give core 0 everything above the floor.
        curves = [[0, 10, 20, 30, 40, 50, 60, 70, 80],
                  [0, 1, 1, 1, 1, 1, 1, 1, 1]]
        quotas = utility_partition(curves, 8)
        assert sum(quotas) == 8
        assert quotas == (7, 1)

    def test_partition_floor_enforced(self):
        with pytest.raises(HierarchyError, match="exceed"):
            utility_partition([[0, 1]] * 9, 8)

    def test_even_partition(self):
        assert even_partition(2, 8) == (4, 4)
        assert even_partition(3, 8) == (3, 3, 2)


class TestSimulateMulticore:
    def traces(self):
        return [synth_trace(seed=1), synth_trace(seed=2)]

    def test_private_l1_equals_standalone(self):
        """Interleaving must not perturb per-core private state."""
        traces = self.traces()
        result = simulate_multicore(traces, L1, SHARED, seed=5)
        for trace, stats in zip(traces, result.l1_stats):
            assert stats.as_dict() == replay_trace(trace, L1).as_dict()

    def test_deterministic(self):
        traces = self.traces()
        first = simulate_multicore(traces, L1, SHARED, seed=9)
        second = simulate_multicore(traces, L1, SHARED, seed=9)
        assert first.as_dict() == second.as_dict()

    def test_shared_refs_accounted_per_core(self):
        result = simulate_multicore(self.traces(), L1, SHARED)
        assert sum(result.shared_refs) == result.shared_stats.refs_total
        for refs, hits in zip(result.shared_refs, result.shared_hits):
            assert 0 <= hits <= refs

    def test_quota_validation(self):
        with pytest.raises(HierarchyError, match="one way quota per core"):
            simulate_multicore(self.traces(), L1, SHARED, quotas=(8,))

    def test_shared_kill_probe_invalidates(self):
        """A pure kill served by L1 retires the stale shared copy."""
        trace = TraceBuffer()
        trace.append(0, 0)          # miss: installs in L1 and shared
        trace.append(0, FLAG_KILL)  # L1 hit + kill: probe the shared copy
        trace.append(0, 0)          # must go to memory again
        result = simulate_multicore([trace, TraceBuffer()], L1, SHARED,
                                    shared_kill=True)
        assert result.kill_probes == 1
        assert result.shared_stats.dead_line_frees == 1
        assert result.shared_hits[0] == 0

    def test_without_shared_kill_copy_survives(self):
        trace = TraceBuffer()
        trace.append(0, 0)
        trace.append(0, FLAG_KILL)  # L1 invalidates its own line only
        trace.append(0, 0)          # served by the shared copy
        result = simulate_multicore([trace, TraceBuffer()], L1, SHARED,
                                    shared_kill=False)
        assert result.kill_probes == 0
        assert result.shared_hits[0] == 1

    def test_cores_do_not_share_addresses(self):
        """Same-address streams on two cores must not hit off each
        other at the shared level (disjoint block offsets)."""
        t0 = TraceBuffer()
        t1 = TraceBuffer()
        for _ in range(4):
            t0.append(0, 0)
            t1.append(0, 0)
        result = simulate_multicore([t0, t1], L1, SHARED)
        # Each core's first touch misses at both levels independently.
        assert result.shared_stats.misses == 2


class TestGrid:
    def test_grid_shape_and_schedule(self):
        traces = [synth_trace(seed=1), synth_trace(seed=2)]
        grid = multicore_grid(traces, L1, SHARED, quotas=(6, 2), seed=4)
        assert sorted(grid) == sorted(MULTICORE_CONFIGS)
        for config, result in grid.items():
            row = result.as_dict()
            assert row["events"] == sum(len(t) for t in traces)
            assert row["seed"] == 4
            if "partitioned" in config:
                assert row["quotas"] == [6, 2]
            else:
                assert row["quotas"] is None

    def test_kill_cells_change_shared_behavior(self):
        traces = [synth_trace(seed=1, kill=0.3),
                  synth_trace(seed=2, kill=0.3)]
        grid = multicore_grid(traces, L1, SHARED, quotas=(4, 4))
        assert (
            grid["kill"].as_dict() != grid["shared"].as_dict()
        )
