"""Experiment harness tests: Figure 5 bands, sweeps, CLI surface."""

import pytest

from repro.cache.cache import CacheConfig
from repro.evalharness.experiment import (
    DEFAULT_CACHE,
    run_benchmark,
    run_compiled,
)
from repro.evalharness.figure5 import (
    PAPER_DYNAMIC_BAND,
    PAPER_STATIC_BAND,
    Figure5Row,
    average_row,
    figure5_table,
    figure5_options,
    format_figure5,
)
from repro.evalharness.sweeps import (
    cache_size_sweep,
    kill_bit_ablation,
    policy_ablation,
    promotion_ablation,
    spill_ablation,
)
from repro.evalharness.tables import format_bar_chart, format_table
from repro.unified.pipeline import CompilationOptions


class TestRunBenchmark:
    def test_result_fields(self):
        result = run_benchmark("queen", options=figure5_options())
        assert result.name == "queen"
        assert result.output == (92,)
        assert result.dynamic["total"] > 0
        assert result.static.total > 0
        assert 0 <= result.dynamic_percent_unambiguous <= 100
        assert 0 <= result.static_percent_unambiguous <= 100

    def test_unified_reduces_cache_traffic(self):
        result = run_benchmark("queen", options=figure5_options())
        assert result.unified_stats.refs_cached < (
            result.conventional_stats.refs_cached
        )
        assert result.cache_traffic_reduction > 0

    def test_conventional_baseline_sees_all_refs(self):
        result = run_benchmark("queen", options=figure5_options())
        assert result.conventional_stats.refs_cached == (
            result.dynamic["total"]
        )
        assert result.conventional_stats.refs_bypassed == 0

    def test_bypassed_fraction_matches_trace(self):
        result = run_benchmark("sieve", options=figure5_options())
        assert result.unified_stats.refs_bypassed == (
            result.dynamic["bypassed"]
        )

    def test_wrong_output_detected(self):
        from repro.lang.errors import VMError
        from repro.unified.pipeline import compile_source

        program = compile_source("int main() { print(1); return 0; }")
        with pytest.raises(VMError):
            run_compiled("bad", program, expected_output=[2])

    def test_keep_trace(self):
        result = run_benchmark("queen", keep_trace=True)
        assert result.trace is not None
        assert len(result.trace) == result.dynamic["total"]


class TestFigure5:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure5_table()

    def test_all_benchmarks_present(self, rows):
        assert [row.name for row in rows] == [
            "bubble", "intmm", "puzzle", "queen", "sieve", "towers"
        ]

    def test_average_static_in_paper_band(self, rows):
        avg = average_row(rows)
        low, high = PAPER_STATIC_BAND
        assert low - 10 <= avg.static_percent_unambiguous <= high + 10

    def test_average_dynamic_in_paper_band(self, rows):
        avg = average_row(rows)
        low, high = PAPER_DYNAMIC_BAND
        assert low <= avg.dynamic_percent_unambiguous <= high

    def test_reduction_about_sixty_percent(self, rows):
        avg = average_row(rows)
        assert 45.0 <= avg.cache_traffic_reduction <= 75.0

    def test_reduction_tracks_dynamic_unambiguous(self, rows):
        # Bypassed refs are exactly the unambiguous ones that skip the
        # cache; reduction of through-cache refs must track closely.
        for row in rows:
            assert row.cache_traffic_reduction == pytest.approx(
                row.dynamic_percent_unambiguous, abs=12.0
            )

    def test_formatting(self, rows):
        text = format_figure5(rows)
        assert "Figure 5" in text
        assert "towers" in text
        assert "average" in text

    def test_miller_ratio_band(self, rows):
        # Paper Section 6: Miller's static unambiguous:ambiguous ratio
        # is between 1:1 and 3:1.  Check our per-benchmark static ratio
        # lands in a loosened version of that interval.
        result = run_benchmark("towers", options=figure5_options())
        assert 0.8 <= result.static.miller_ratio <= 6.0


class TestSweeps:
    def test_cache_size_sweep_shape(self):
        rows = cache_size_sweep("queen", sizes=(64, 256))
        assert len(rows) == 2
        assert rows[0]["size_words"] == 64
        for row in rows:
            assert 0 <= row["cache_traffic_reduction"] <= 100

    def test_policy_ablation_covers_policies(self):
        rows = policy_ablation("queen", policies=("lru", "fifo", "min"))
        assert {row["policy"] for row in rows} == {"lru", "fifo", "min"}
        assert {row["kill_bits"] for row in rows} == {True, False}

    def test_min_never_worse_than_lru_in_ablation(self):
        rows = policy_ablation("sieve", policies=("lru", "min"))
        by_key = {
            (row["policy"], row["kill_bits"]): row["misses"] for row in rows
        }
        assert by_key[("min", True)] <= by_key[("lru", True)]
        assert by_key[("min", False)] <= by_key[("lru", False)]

    def test_kill_bits_never_hurt_misses(self):
        for size in (32, 64):
            rows = kill_bit_ablation("towers", sizes=(size,))
            by_mode = {row["kill_mode"]: row for row in rows}
            assert by_mode["invalidate"]["misses"] <= (
                by_mode["off"]["misses"]
            )

    def test_kill_bits_reduce_writebacks(self):
        rows = kill_bit_ablation("towers", sizes=(32,))
        by_mode = {row["kill_mode"]: row for row in rows}
        assert by_mode["invalidate"]["writebacks"] <= (
            by_mode["off"]["writebacks"]
        )
        assert by_mode["invalidate"]["dead_drops"] >= 0

    def test_spill_ablation_routes_spills(self):
        rows = spill_ablation()
        by_flag = {row["spill_to_cache"]: row for row in rows}
        assert set(by_flag) == {True, False}
        assert by_flag[True]["spill_refs"] > 0
        # Spill-to-cache turns spill traffic into cache references;
        # bypassing sends the same words over the memory bus instead.
        assert by_flag[True]["refs_cached"] > by_flag[False]["refs_cached"]
        assert by_flag[True]["bus_words"] < by_flag[False]["bus_words"]

    def test_promotion_ablation_monotone(self):
        rows = promotion_ablation("bubble")
        by_level = {row["promotion"]: row for row in rows}
        # More promotion => fewer data references and a lower
        # unambiguous fraction (register-worthy refs leave the stream).
        assert by_level["none"]["dynamic_refs"] >= (
            by_level["modest"]["dynamic_refs"]
        )
        assert by_level["modest"]["dynamic_refs"] >= (
            by_level["aggressive"]["dynamic_refs"]
        )
        assert by_level["none"]["dynamic_percent_unambiguous"] >= (
            by_level["aggressive"]["dynamic_percent_unambiguous"]
        )


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_format_bar_chart(self):
        text = format_bar_chart([("a", 50.0), ("b", 100.0)])
        lines = text.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_empty_chart(self):
        assert format_bar_chart([], title="t") == "t"


class TestCLI:
    def test_figure5_cli(self, capsys):
        from repro.evalharness.cli import main_figure5

        main_figure5(["--benchmarks", "queen", "--cache-words", "128"])
        out = capsys.readouterr().out
        assert "queen" in out
        assert "Figure 5" in out

    def test_run_cli(self, tmp_path, capsys):
        from repro.evalharness.cli import main_run

        path = tmp_path / "p.minic"
        path.write_text(
            "int main() { int i; int s; s = 0; "
            "for (i = 0; i < 5; i++) s += i; print(s); return 0; }"
        )
        main_run([str(path)])
        out = capsys.readouterr().out
        assert out.startswith("10\n")
        assert "refs_total" in out

    def test_compile_cli(self, tmp_path, capsys):
        from repro.evalharness.cli import main_compile

        path = tmp_path / "p.minic"
        path.write_text("int a[4]; int main() { a[0] = 1; return a[0]; }")
        main_compile([str(path), "--promotion", "none"])
        out = capsys.readouterr().out
        assert "alias sets:" in out
        assert "Am_LOAD" in out

    def test_cli_extension_flags(self, tmp_path, capsys):
        from repro.evalharness.cli import main_run

        path = tmp_path / "p.minic"
        path.write_text(
            "int main() { int x; int *p; x = 1; p = &x; "
            "*p = *p + 41; print(x); return 0; }"
        )
        main_run([
            str(path), "--hybrid", "--merge-true-aliases",
            "--refine-points-to", "--cache-globals",
        ])
        out = capsys.readouterr().out
        # Definition-1 merging plus promotion collapses the whole
        # program into registers: zero data references remain.
        assert out.startswith("42\n")
        assert "0 data references" in out
