"""Golden-file regression test pinning the Figure 5 table.

The headline experiment's exact numbers — every float, every
reference count, for all six benchmarks — are pinned in
``tests/golden/figure5.json``.  Any change to the compiler, the VM,
the cache model, or the evaluation engine that moves a single value
fails here, deliberately loudly: the whole engine refactor is sold on
bit-identical results, so a drift is either a bug or a semantics
change that must re-pin the golden file on purpose.

To regenerate after an *intentional* semantics change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_figure5_golden.py -q

and commit the refreshed ``tests/golden/figure5.json`` alongside the
change that moved the numbers.
"""

import json
import os

import pytest

from repro.evalharness.figure5 import figure5_table
from repro.programs import BENCHMARK_NAMES

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "figure5.json"
)


def row_payload(row):
    return {
        "static_percent_unambiguous": row.static_percent_unambiguous,
        "static_bypass_checked": row.static_bypass_checked,
        "dynamic_percent_unambiguous": row.dynamic_percent_unambiguous,
        "cache_traffic_reduction": row.cache_traffic_reduction,
        "bus_traffic_reduction": row.bus_traffic_reduction,
        "dynamic_refs": row.dynamic_refs,
    }


@pytest.fixture(scope="module")
def measured():
    rows = figure5_table()
    return {row.name: row_payload(row) for row in rows}


def test_figure5_matches_golden(measured):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        with open(GOLDEN_PATH, "w") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    assert set(golden) == set(BENCHMARK_NAMES)
    # Compare exactly — these are deterministic integer-arithmetic
    # pipelines; float equality is intentional, not a tolerance bug.
    assert measured == golden


def test_golden_covers_all_benchmarks():
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    assert sorted(golden) == sorted(BENCHMARK_NAMES)
    for name, values in golden.items():
        assert values["dynamic_refs"] > 0, name
