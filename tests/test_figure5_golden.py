"""Golden-file regression test pinning the Figure 5 table.

The headline experiment's exact numbers — every float, every
reference count, for all six benchmarks — are pinned in
``tests/golden/figure5.json``.  Any change to the compiler, the VM,
the cache model, or the evaluation engine that moves a single value
fails here, deliberately loudly: the whole engine refactor is sold on
bit-identical results, so a drift is either a bug or a semantics
change that must re-pin the golden file on purpose.

To regenerate after an *intentional* semantics change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_figure5_golden.py -q

and commit the refreshed ``tests/golden/figure5.json`` alongside the
change that moved the numbers.

``REPRO_GOLDEN_ENGINE`` selects which cache engine produces the
measured table — ``cache`` (the online simulator, the default),
``functional`` (the data-carrying twin, re-executing every benchmark
against it), ``multi`` (the shared-decode multi-replay core),
``stackdist`` (the scalar one-pass sweep engines) or ``vectorized``
(the set-major array kernels).  All five must match the same golden
file exactly; CI runs the full matrix.
"""

import json
import os

import pytest

from repro.evalharness.figure5 import figure5_table
from repro.programs import BENCHMARK_NAMES

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "figure5.json"
)

GOLDEN_ENGINES = ("cache", "functional", "multi", "stackdist",
                  "vectorized")


def functional_table():
    """The Figure 5 rows scored by the functional twin.

    Each benchmark is executed against :class:`DataCachedMemory` under
    the unified and conventional configurations — the cache stats are
    measured *during* execution, not replayed — and the row is
    assembled from the same :class:`ExperimentResult` arithmetic as
    the replay engines.
    """
    from repro.cache.functional import DataCachedMemory
    from repro.evalharness.experiment import (
        DEFAULT_CACHE,
        ExperimentResult,
        _static_bypass_checked,
        conventional_config,
    )
    from repro.evalharness.figure5 import Figure5Row, figure5_options
    from repro.programs import get_benchmark
    from repro.unified.pipeline import compile_source
    from repro.vm.memory import RecordingMemory

    options = figure5_options()
    rows = []
    for name in BENCHMARK_NAMES:
        program = compile_source(get_benchmark(name).source, options)
        memory = RecordingMemory()
        result = program.run(memory=memory)
        stats = []
        for config in (DEFAULT_CACHE, conventional_config(DEFAULT_CACHE)):
            functional = DataCachedMemory(config)
            outcome = compile_source(
                get_benchmark(name).source, options
            ).run(memory=functional)
            assert tuple(outcome.output) == tuple(result.output), name
            stats.append(functional.stats)
        rows.append(Figure5Row.from_result(ExperimentResult(
            name=name,
            options=options,
            cache_config=DEFAULT_CACHE,
            static=program.static,
            dynamic=memory.buffer.summary(),
            unified_stats=stats[0],
            conventional_stats=stats[1],
            output=tuple(result.output),
            steps=result.steps,
            static_bypass_checked=_static_bypass_checked(
                program, DEFAULT_CACHE
            ),
        )))
    return rows


def measured_table():
    engine = os.environ.get("REPRO_GOLDEN_ENGINE", "cache")
    if engine not in GOLDEN_ENGINES:
        raise ValueError(
            "REPRO_GOLDEN_ENGINE={!r} (expected one of {})".format(
                engine, "/".join(GOLDEN_ENGINES)
            )
        )
    if engine == "functional":
        return functional_table()
    if engine == "cache":
        return figure5_table()
    previous = os.environ.get("REPRO_SWEEP_ENGINE")
    os.environ["REPRO_SWEEP_ENGINE"] = engine
    try:
        return figure5_table()
    finally:
        if previous is None:
            del os.environ["REPRO_SWEEP_ENGINE"]
        else:
            os.environ["REPRO_SWEEP_ENGINE"] = previous


def row_payload(row):
    return {
        "static_percent_unambiguous": row.static_percent_unambiguous,
        "static_bypass_checked": row.static_bypass_checked,
        "dynamic_percent_unambiguous": row.dynamic_percent_unambiguous,
        "cache_traffic_reduction": row.cache_traffic_reduction,
        "bus_traffic_reduction": row.bus_traffic_reduction,
        "dynamic_refs": row.dynamic_refs,
    }


@pytest.fixture(scope="module")
def measured():
    rows = measured_table()
    return {row.name: row_payload(row) for row in rows}


def test_figure5_matches_golden(measured):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        with open(GOLDEN_PATH, "w") as handle:
            json.dump(measured, handle, indent=2, sort_keys=True)
            handle.write("\n")
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    assert set(golden) == set(BENCHMARK_NAMES)
    # Compare exactly — these are deterministic integer-arithmetic
    # pipelines; float equality is intentional, not a tolerance bug.
    assert measured == golden


def test_golden_covers_all_benchmarks():
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    assert sorted(golden) == sorted(BENCHMARK_NAMES)
    for name, values in golden.items():
        assert values["dynamic_refs"] > 0, name
