"""The single-pass multi-configuration replay core vs the serial path.

Every configuration the sweeps can request — policies, bypass/kill
honoring, write policies, allocation policy, kill modes, multi-word
lines, MIN — must produce bit-identical statistics whether it runs
through :func:`replay_trace` (the reference serial path) or through
:func:`replay_trace_multi` (the engine's shared-decode fast path).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import CacheConfig
from repro.cache.replay import (
    MinConfig,
    decode_trace,
    replay_trace,
    replay_trace_multi,
)
from repro.cache.semantics import (
    MinPolicy,
    _collapse_runs_py,
    collapse_runs,
    flag_presence,
    flavor_decode,
    next_use_index,
    replay_decoded,
)
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE, TraceBuffer


def make_trace(refs):
    trace = TraceBuffer()
    for address, is_write, bypass, kill in refs:
        flags = 0
        if is_write:
            flags |= FLAG_WRITE
        if bypass:
            flags |= FLAG_BYPASS
        if kill:
            flags |= FLAG_KILL
        trace.append(address, flags)
    return trace


#: Every behaviorally distinct configuration family the harness uses.
SWEEP_CONFIGS = [
    CacheConfig(size_words=8, line_words=1, associativity=2, policy="lru"),
    CacheConfig(size_words=8, line_words=1, associativity=2, policy="fifo"),
    CacheConfig(size_words=8, line_words=1, associativity=2, policy="random",
                seed=99),
    CacheConfig(size_words=8, line_words=1, associativity=2, policy="lru",
                honor_bypass=False, honor_kill=False),
    CacheConfig(size_words=8, line_words=1, associativity=2, policy="lru",
                honor_bypass=True, honor_kill=False),
    CacheConfig(size_words=8, line_words=1, associativity=2, policy="lru",
                write_policy="writethrough"),
    CacheConfig(size_words=8, line_words=1, associativity=2, policy="lru",
                allocate_on_write=False),
    CacheConfig(size_words=8, line_words=1, associativity=2, policy="lru",
                kill_mode="demote"),
    CacheConfig(size_words=16, line_words=4, associativity=2, policy="lru"),
    CacheConfig(size_words=16, line_words=4, associativity=2, policy="fifo",
                kill_mode="demote", write_policy="writethrough"),
    CacheConfig(size_words=4, line_words=1, associativity=4, policy="random",
                seed=7, allocate_on_write=False, kill_mode="demote"),
]


def serial_replay(trace, spec):
    """The reference result for one multi-replay slot."""
    if isinstance(spec, MinConfig):
        return replay_trace(
            trace,
            policy="min",
            size_words=spec.config.size_words,
            line_words=spec.config.line_words,
            associativity=spec.config.associativity,
            honor_bypass=spec.config.honor_bypass,
            honor_kill=spec.config.honor_kill,
            kill_mode=spec.config.kill_mode,
        )
    return replay_trace(trace, spec)


def assert_multi_matches_serial(trace, configs):
    serial = [serial_replay(trace, spec) for spec in configs]
    multi = replay_trace_multi(trace, configs)
    for spec, expect, got in zip(configs, serial, multi):
        assert got.as_dict() == expect.as_dict(), spec


# A dense little stream touching hits, misses, evictions, bypasses,
# kills, writes, and re-reads of killed addresses.
HAND_REFS = [
    (0, False, False, False),
    (1, True, False, False),
    (2, False, False, False),
    (3, True, False, True),
    (0, False, False, False),
    (4, False, True, False),   # bypass read, not resident
    (1, False, True, True),    # bypass read of a dirty resident line + kill
    (5, True, True, False),    # bypass write
    (6, True, False, False),
    (7, False, False, True),   # kill on miss
    (2, True, True, True),     # bypass write + kill (kill not counted)
    (0, True, False, False),
    (8, False, False, False),
    (9, False, False, False),  # forces eviction at assoc 2
    (1, False, False, False),
    (3, False, False, False),
]


class TestMultiEqualsSerial:
    def test_hand_trace_all_configs(self):
        trace = make_trace(HAND_REFS)
        assert_multi_matches_serial(trace, list(SWEEP_CONFIGS))

    def test_min_configs_share_next_use(self):
        trace = make_trace(HAND_REFS)
        specs = [
            MinConfig(size_words=8, line_words=1, associativity=2),
            MinConfig(size_words=8, line_words=1, associativity=2,
                      honor_kill=False),
            MinConfig(size_words=4, line_words=1, associativity=1),
            MinConfig(size_words=16, line_words=4, associativity=2),
            MinConfig(size_words=8, line_words=1, associativity=2,
                      honor_bypass=False),
        ]
        assert_multi_matches_serial(trace, specs)

    def test_mixed_online_and_min(self):
        trace = make_trace(HAND_REFS)
        specs = [
            SWEEP_CONFIGS[0],
            MinConfig(size_words=8, line_words=1, associativity=2),
            SWEEP_CONFIGS[3],
            MinConfig(size_words=8, line_words=1, associativity=2,
                      honor_kill=False),
        ]
        assert_multi_matches_serial(trace, specs)

    def test_empty_trace(self):
        trace = make_trace([])
        stats = replay_trace_multi(
            trace, [SWEEP_CONFIGS[0], MinConfig(size_words=8,
                                                associativity=2)]
        )
        assert all(s.refs_total == 0 for s in stats)

    def test_precomputed_decode_shared_across_calls(self):
        trace = make_trace(HAND_REFS)
        decoded = decode_trace(trace)
        direct = replay_trace_multi(trace, [SWEEP_CONFIGS[0]])
        shared = replay_trace_multi(trace, [SWEEP_CONFIGS[0]],
                                    decoded=decoded)
        assert direct[0].as_dict() == shared[0].as_dict()

    @given(
        refs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=23),
                st.booleans(),
                st.booleans(),
                st.booleans(),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_random_traces(self, refs):
        trace = make_trace(refs)
        specs = list(SWEEP_CONFIGS) + [
            MinConfig(size_words=8, line_words=1, associativity=2),
            MinConfig(size_words=8, line_words=1, associativity=2,
                      honor_kill=False),
        ]
        assert_multi_matches_serial(trace, specs)


class TestReplayTraceKwargsGuard:
    def test_config_plus_kwargs_raises(self):
        trace = make_trace(HAND_REFS)
        config = CacheConfig(size_words=8, associativity=2)
        with pytest.raises(ValueError, match="not both"):
            replay_trace(trace, config, size_words=4)

    def test_config_alone_still_works(self):
        trace = make_trace(HAND_REFS)
        config = CacheConfig(size_words=8, associativity=2)
        assert replay_trace(trace, config).refs_total == len(HAND_REFS)

    def test_kwargs_alone_still_work(self):
        trace = make_trace(HAND_REFS)
        stats = replay_trace(trace, size_words=8, associativity=2)
        assert stats.refs_total == len(HAND_REFS)

    def test_min_config_plus_kwargs_raises(self):
        config = CacheConfig(size_words=8, associativity=2)
        with pytest.raises(ValueError, match="not both"):
            MinConfig(config, size_words=4)


def collapse_for(trace, config):
    """The CollapsedRuns the replay layer would compute for ``config``."""
    columns = trace.to_columns()
    has_bypass, has_kill = flag_presence(columns)
    effective = (
        config.line_words,
        config.honor_bypass and has_bypass,
        config.honor_kill and has_kill,
    )
    stream = flavor_decode(columns, effective + (config.write_policy,))
    blocks = (
        stream.blocks_np if stream.blocks_np is not None
        else stream.blocks_list
    )
    types = (
        stream.types_np if stream.types_np is not None
        else stream.types_list
    )
    return stream, collapse_runs(blocks, types, config.num_sets)


#: Collapse is only sound under write-allocation (a write-around head
#: miss leaves its followers missing too) — the eligible slice of the
#: sweep family, across all three online policies plus the variant
#: knobs.
COLLAPSE_CONFIGS = [
    spec for spec in SWEEP_CONFIGS if spec.allocate_on_write
]


class TestRunCollapseBitIdentity:
    """The same-block run collapse fronting ``replay_decoded`` never
    changes a single counter — collapsed followers are guaranteed MRU
    hits and their write-dirtying is absorbed exactly."""

    def assert_collapse_invisible(self, trace):
        decoded = decode_trace(trace)
        for config in COLLAPSE_CONFIGS:
            _stream, runs = collapse_for(trace, config)
            plain = replay_decoded(decoded, config)
            fronted = replay_decoded(decoded, config, runs=runs)
            assert fronted.as_dict() == plain.as_dict(), config
        # MIN rides the same collapse with its next-use index intact.
        config = CacheConfig(size_words=8, line_words=1, associativity=2)
        next_use = next_use_index(trace, 1, True)
        _stream, runs = collapse_for(trace, config)
        plain = replay_decoded(
            decoded, config, policy=MinPolicy(next_use)
        )
        fronted = replay_decoded(
            decoded, config, policy=MinPolicy(next_use), runs=runs
        )
        assert fronted.as_dict() == plain.as_dict()

    def test_hand_trace(self):
        self.assert_collapse_invisible(make_trace(HAND_REFS))

    def test_dense_runs(self):
        """Long same-block runs with interleaved sets — the shape the
        collapse exists for."""
        refs = []
        for block in (0, 1, 8, 1, 0):
            for repeat in range(6):
                refs.append((block, repeat % 2 == 1, False, False))
        refs.append((9, False, False, True))
        refs.extend((0, True, False, False) for _ in range(4))
        self.assert_collapse_invisible(make_trace(refs))

    @given(
        refs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),
                st.booleans(),
                st.booleans(),
                st.booleans(),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_collapse_bit_identity(self, refs):
        self.assert_collapse_invisible(make_trace(refs))

    @given(
        refs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),
                st.booleans(),
                st.booleans(),
                st.booleans(),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_numpy_and_python_collapse_agree(self, refs):
        pytest.importorskip("numpy")
        trace = make_trace(refs)
        for config in COLLAPSE_CONFIGS[:3]:
            stream, runs = collapse_for(trace, config)
            blocks = stream.blocks_list
            types = stream.types_list
            pure = _collapse_runs_py(blocks, types, config.num_sets)
            if runs is None or pure is None:
                assert runs is None and pure is None
                continue
            assert runs.indices_list == pure.indices_list
            assert runs.run_writes == pure.run_writes
            assert runs.last_indices == pure.last_indices
            assert runs.follower_reads == pure.follower_reads
            assert runs.follower_writes == pure.follower_writes
            assert runs.collapsed == pure.collapsed


class TestFuzzedProgramTraces:
    """The multi-replay core against traces of real compiled programs."""

    @pytest.fixture(scope="class")
    def fuzz_traces(self):
        from repro.robustness.generator import generate_program
        from repro.unified.pipeline import CompilationOptions, compile_source
        from repro.vm.memory import RecordingMemory

        traces = []
        for seed in (3, 11, 29):
            generated = generate_program(seed)
            program = compile_source(
                generated.source,
                CompilationOptions(scheme="unified", promotion="aggressive"),
            )
            memory = RecordingMemory()
            program.run(memory=memory)
            traces.append(memory.buffer)
        return traces

    def test_fuzzed_traces_agree(self, fuzz_traces):
        for trace in fuzz_traces:
            assert_multi_matches_serial(
                trace,
                [
                    SWEEP_CONFIGS[0],
                    SWEEP_CONFIGS[2],
                    SWEEP_CONFIGS[3],
                    MinConfig(size_words=8, line_words=1, associativity=2),
                ],
            )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_fuzzed_seeds(self, seed):
        from repro.robustness.generator import generate_program
        from repro.unified.pipeline import CompilationOptions, compile_source
        from repro.vm.memory import RecordingMemory

        generated = generate_program(seed)
        program = compile_source(
            generated.source,
            CompilationOptions(scheme="unified", promotion="aggressive"),
        )
        memory = RecordingMemory()
        program.run(memory=memory)
        assert_multi_matches_serial(
            memory.buffer,
            [
                SWEEP_CONFIGS[0],
                SWEEP_CONFIGS[5],
                SWEEP_CONFIGS[6],
                MinConfig(size_words=8, line_words=1, associativity=2),
            ],
        )
