"""The fault-injection framework itself: plans, decisions, sites.

Chaos only earns trust when a failing run replays: every decision must
be a pure function of ``(seed, kind, key, index)``, a plan must
round-trip through its string form, and a ``fault_plan(...)`` context
must win over (or, with ``None``, mask) the ambient
``REPRO_FAULT_PLAN`` environment plan.
"""

import errno
import time

import pytest

from repro import faultinject
from repro.errors import FaultInjected, WorkerQuarantined, error_signature
from repro.faultinject import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultPlan,
    PlanError,
    WorkerCrash,
    decision_fraction,
)
from repro.robustness.driver import _stage_family


@pytest.fixture(autouse=True)
def _mask_ambient_fault_plan():
    # Every test here builds its own plan; a suite-wide chaos plan (the
    # chaos CI job exports one) must not leak into the assertions.
    with faultinject.fault_plan(None):
        yield


class TestPlanParsing:
    def test_round_trip(self):
        text = ("seed=7,limit=2,stall_seconds=0.5,timeout=1.5,retries=3,"
                "interrupt_after=2,bitflip=0.5,worker_crash=0.25")
        plan = FaultPlan.parse(text)
        clone = FaultPlan.parse(plan.format())
        assert clone.seed == 7
        assert clone.limit == 2
        assert clone.stall_seconds == 0.5
        assert clone.timeout == 1.5
        assert clone.retries == 3
        assert clone.interrupt_after == 2
        assert clone.rates == {"bitflip": 0.5, "worker_crash": 0.25}
        assert clone.format() == plan.format()

    def test_defaults(self):
        plan = FaultPlan.parse("seed=3")
        assert plan.rates == {}
        assert plan.limit == 1
        assert plan.timeout is None
        assert plan.retries is None
        assert plan.interrupt_after is None

    def test_every_kind_parses(self):
        fields = ",".join("{}=0.5".format(kind) for kind in FAULT_KINDS)
        plan = FaultPlan.parse("seed=1," + fields)
        assert set(plan.rates) == set(FAULT_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError):
            FaultPlan.parse("seed=1,disk_melt=1.0")

    def test_missing_equals_rejected(self):
        with pytest.raises(PlanError):
            FaultPlan.parse("seed=1,bitflip")

    def test_bad_value_rejected(self):
        with pytest.raises(PlanError):
            FaultPlan.parse("seed=1,bitflip=lots")

    def test_empty_fields_tolerated(self):
        plan = FaultPlan.parse("seed=2,,bitflip=1.0,")
        assert plan.seed == 2
        assert plan.rates == {"bitflip": 1.0}


class TestDecisions:
    def test_fraction_deterministic_and_bounded(self):
        first = decision_fraction(7, "bitflip", "some/key", 0)
        again = decision_fraction(7, "bitflip", "some/key", 0)
        assert first == again
        assert 0.0 <= first < 1.0

    def test_fraction_varies_with_inputs(self):
        base = decision_fraction(7, "bitflip", "some/key", 0)
        assert decision_fraction(8, "bitflip", "some/key", 0) != base
        assert decision_fraction(7, "torn_write", "some/key", 0) != base
        assert decision_fraction(7, "bitflip", "other/key", 0) != base
        assert decision_fraction(7, "bitflip", "some/key", 1) != base

    def test_rate_one_fires_then_limit_stops_it(self):
        plan = FaultPlan(rates={"bitflip": 1.0}, seed=1)
        assert plan.should("bitflip", "key")
        # The per-key counter advanced past ``limit``: transient.
        assert not plan.should("bitflip", "key")
        # A different key has its own counter.
        assert plan.should("bitflip", "other")

    def test_explicit_index_replays_across_plan_instances(self):
        one = FaultPlan(rates={"worker_crash": 0.5}, seed=9)
        two = FaultPlan(rates={"worker_crash": 0.5}, seed=9)
        for attempt in range(4):
            assert one.should("worker_crash", "unit", index=attempt) == \
                two.should("worker_crash", "unit", index=attempt)

    def test_explicit_index_beyond_limit_never_fires(self):
        plan = FaultPlan(rates={"worker_crash": 1.0}, seed=1, limit=2)
        assert plan.should("worker_crash", "unit", index=0)
        assert plan.should("worker_crash", "unit", index=1)
        assert not plan.should("worker_crash", "unit", index=2)

    def test_poison_ignores_limit_and_index(self):
        plan = FaultPlan(rates={"poison_unit": 1.0}, seed=1)
        for attempt in range(5):
            assert plan.should("poison_unit", "unit", index=attempt)

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(seed=1)
        assert not plan.should("bitflip", "key")

    def test_should_fire_counts(self):
        with faultinject.fault_plan("seed=1,bitflip=1.0") as plan:
            assert faultinject.should_fire("bitflip", "key")
            assert not faultinject.should_fire("bitflip", "key")
            assert plan.fired == {"bitflip": 1}


class TestActivation:
    def test_no_plan_means_none(self):
        assert faultinject.active_plan() is None
        assert not faultinject.should_fire("bitflip", "key")

    def test_context_activates_and_exports_env(self):
        with faultinject.fault_plan("seed=4,bitflip=1.0") as plan:
            assert faultinject.active_plan() is plan
            assert FAULT_PLAN_ENV in __import__("os").environ
        assert faultinject.active_plan() is None

    def test_context_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=1,bitflip=1.0")
        with faultinject.fault_plan("seed=2") as plan:
            assert faultinject.active_plan() is plan
            assert faultinject.active_plan().seed == 2

    def test_none_masks_env(self, monkeypatch):
        # Lift this file's ambient mask so the env path is reachable.
        monkeypatch.setattr(faultinject, "_ACTIVE", faultinject._UNSET)
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=1,bitflip=1.0")
        assert faultinject.active_plan() is not None
        with faultinject.fault_plan(None):
            assert faultinject.active_plan() is None
        assert faultinject.active_plan() is not None

    def test_env_plan_parsed_once(self, monkeypatch):
        monkeypatch.setattr(faultinject, "_ACTIVE", faultinject._UNSET)
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=6,torn_write=0.5")
        first = faultinject.active_plan()
        assert first.seed == 6
        # Same text -> the cached parse (its counters persist).
        assert faultinject.active_plan() is first
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=7,torn_write=0.5")
        assert faultinject.active_plan().seed == 7


class TestSites:
    def test_corrupt_bytes_flips_exactly_one_bit(self):
        data = bytes(range(64))
        with faultinject.fault_plan("seed=5,bitflip=1.0"):
            flipped = faultinject.corrupt_bytes("bitflip", "key", data)
        assert flipped != data
        assert len(flipped) == len(data)
        delta = [a ^ b for a, b in zip(data, flipped) if a != b]
        assert len(delta) == 1
        assert bin(delta[0]).count("1") == 1
        # Deterministic: a fresh plan with the same seed flips the same bit.
        with faultinject.fault_plan("seed=5,bitflip=1.0"):
            assert faultinject.corrupt_bytes("bitflip", "key", data) == flipped

    def test_corrupt_bytes_identity_without_plan(self):
        data = b"payload"
        assert faultinject.corrupt_bytes("bitflip", "key", data) is data

    def test_truncate_bytes_strict_prefix(self):
        data = bytes(range(100))
        with faultinject.fault_plan("seed=5,torn_write=1.0"):
            torn = faultinject.truncate_bytes("torn_write", "key", data)
        assert len(torn) < len(data)
        assert data.startswith(torn)

    def test_store_oserror_is_enospc(self):
        with faultinject.fault_plan("seed=1,store_oserror=1.0"):
            with pytest.raises(OSError) as caught:
                faultinject.raise_oserror("store_oserror", "key")
        assert caught.value.errno == errno.ENOSPC

    def test_load_oserror_is_eio(self):
        with faultinject.fault_plan("seed=1,load_oserror=1.0"):
            with pytest.raises(OSError) as caught:
                faultinject.raise_oserror("load_oserror", "key")
        assert caught.value.errno == errno.EIO

    def test_stall_point_sleeps(self):
        with faultinject.fault_plan(
            "seed=1,store_pause=1.0,stall_seconds=0.05"
        ):
            start = time.monotonic()
            faultinject.stall_point("store_pause", "key")
            assert time.monotonic() - start >= 0.04

    def test_crash_point_worker_crash_is_transient(self):
        with faultinject.fault_plan("seed=1,worker_crash=1.0"):
            with pytest.raises(WorkerCrash):
                faultinject.crash_point("unit", attempt=0)
            # The retry's attempt index is past the limit: clean.
            faultinject.crash_point("unit", attempt=1)

    def test_crash_point_poison_fails_every_attempt(self):
        with faultinject.fault_plan("seed=1,poison_unit=1.0"):
            for attempt in range(4):
                with pytest.raises(FaultInjected):
                    faultinject.crash_point("unit", attempt=attempt)

    def test_crash_point_skips_pool_break_in_process(self):
        # allow_exit=False is the serial lane: os._exit would take the
        # parent down, so the pool_break site must be inert there.  If
        # it were not, this test would not live to assert anything.
        with faultinject.fault_plan("seed=1,pool_break=1.0"):
            faultinject.crash_point("unit", attempt=0, allow_exit=False)

    def test_interrupt_point_fires_once_after_threshold(self):
        with faultinject.fault_plan("seed=1,interrupt_after=2"):
            faultinject.interrupt_point(1)
            with pytest.raises(KeyboardInterrupt):
                faultinject.interrupt_point(2)
            # One shot: the resumed run must not be re-killed.
            faultinject.interrupt_point(5)


class TestErrorTaxonomy:
    def test_fault_injected_signature(self):
        signature = error_signature(FaultInjected("boom"))
        assert signature[0] == "FaultInjected"
        assert signature[1] == "faultinject"

    def test_worker_crash_is_fault_injected(self):
        assert issubclass(WorkerCrash, FaultInjected)
        assert WorkerCrash("gone").stage == "faultinject"

    def test_worker_quarantined_carries_last_failure(self):
        quarantined = WorkerQuarantined("towers", 3, WorkerCrash("gone"))
        assert quarantined.item == "towers"
        assert quarantined.attempts == 3
        assert quarantined.last_error_type == "WorkerCrash"
        assert quarantined.last_stage == "faultinject"
        assert error_signature(quarantined)[1] == "quarantine"
        assert "towers" in str(quarantined)

    def test_stage_families_route_to_fault_injection(self):
        assert _stage_family("faultinject") == "fault-injection"
        assert _stage_family("quarantine") == "fault-injection"
        assert _stage_family("staticcheck") == "static-analysis"
        assert _stage_family("parse") == "pipeline"
