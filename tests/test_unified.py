"""Unified-model tests: classification, flavors, bypass/kill bits."""

import pytest

from conftest import compile_program

from repro.ir.instructions import (
    Load,
    RefClass,
    RefFlavor,
    RefOrigin,
    Store,
)
from repro.lang.errors import IRError
from repro.ir.validate import verify_annotations


def refs_of(program, function=None, cls=None):
    result = []
    functions = program.module.functions
    names = [function] if function else list(functions)
    for name in names:
        for instruction in functions[name].instructions():
            if isinstance(instruction, (Load, Store)):
                ref = instruction.ref
                if cls is None or isinstance(instruction, cls):
                    result.append(ref)
    return result


SIMPLE = "int main() { int x; x = 1; return x; }"
ARRAY = "int a[4]; int main() { a[0] = 1; return a[0]; }"
ALIASED = "int main() { int x; int *p; p = &x; *p = 2; return x; }"


class TestFlavors:
    def test_unambiguous_load_is_umam(self):
        program = compile_program(SIMPLE, promotion="none")
        loads = refs_of(program, cls=Load)
        user_loads = [r for r in loads if r.origin is RefOrigin.USER]
        assert user_loads
        for ref in user_loads:
            assert ref.flavor is RefFlavor.UMAM_LOAD
            assert ref.bypass

    def test_unambiguous_store_is_umam(self):
        program = compile_program(SIMPLE, promotion="none")
        stores = [
            r for r in refs_of(program, cls=Store)
            if r.origin is RefOrigin.USER
        ]
        assert stores
        for ref in stores:
            assert ref.flavor is RefFlavor.UMAM_STORE
            assert ref.bypass

    def test_ambiguous_refs_go_through_cache(self):
        program = compile_program(ARRAY, promotion="none")
        ambiguous = [
            r for r in refs_of(program)
            if r.ref_class is RefClass.AMBIGUOUS
        ]
        assert ambiguous
        for ref in ambiguous:
            assert ref.flavor in (RefFlavor.AM_LOAD, RefFlavor.AMSP_STORE)
            assert not ref.bypass

    def test_aliased_scalar_is_ambiguous(self):
        program = compile_program(ALIASED, promotion="none")
        x_refs = [
            r for r in refs_of(program) if r.access_path.startswith("x#")
        ]
        assert x_refs
        for ref in x_refs:
            assert ref.ref_class is RefClass.AMBIGUOUS

    def test_spill_store_goes_through_cache(self):
        from test_regalloc import PRESSURE_SOURCE

        program = compile_program(PRESSURE_SOURCE, promotion="aggressive")
        spill_stores = [
            r for r in refs_of(program, cls=Store)
            if r.origin is RefOrigin.SPILL
        ]
        assert spill_stores, "pressure program must spill"
        for ref in spill_stores:
            assert ref.flavor is RefFlavor.AMSP_STORE
            assert not ref.bypass
        spill_loads = [
            r for r in refs_of(program, cls=Load)
            if r.origin is RefOrigin.SPILL
        ]
        assert spill_loads
        # Last reloads carry kill bits; non-last reloads stay Am_LOAD.
        assert any(
            ref.kill and ref.flavor is RefFlavor.UMAM_LOAD
            for ref in spill_loads
        )

    def test_conventional_scheme_never_bypasses(self):
        program = compile_program(ARRAY, scheme="conventional",
                                  promotion="none")
        for ref in refs_of(program):
            assert not ref.bypass
            assert not ref.kill
            assert ref.flavor in (RefFlavor.AM_LOAD, RefFlavor.AMSP_STORE)

    def test_every_ref_classified_and_flavored(self):
        program = compile_program(
            "int a[4]; int f(int *p) { return *p; } "
            "int main() { return f(a) + a[1]; }",
            promotion="modest",
        )
        verify_annotations(program.module)
        for ref in refs_of(program):
            assert ref.ref_class is not RefClass.UNKNOWN
            assert ref.flavor is not None


class TestKillBits:
    def test_last_use_load_killed(self):
        # x is loaded once and never referenced again: that load is a
        # last use and carries the kill bit.
        program = compile_program(
            "int main() { int x; x = 1; return x; }", promotion="none"
        )
        loads = [
            r for r in refs_of(program, cls=Load)
            if r.access_path.startswith("x#")
        ]
        assert loads
        assert all(ref.kill for ref in loads)

    def test_loop_variable_not_killed_inside_loop(self):
        program = compile_program(
            "int main() { int i; int s; s = 0; "
            "for (i = 0; i < 4; i++) s = s + 1; return s; }",
            promotion="none",
        )
        # The load of i in the loop condition is not a last use (the
        # update reads it again and the next iteration reloads it).
        cond_loads = [
            r for r in refs_of(program, cls=Load)
            if r.access_path.startswith("i#")
        ]
        assert any(not ref.kill for ref in cond_loads)

    def test_kill_bits_disabled_by_option(self):
        program = compile_program(SIMPLE, promotion="none", kill_bits=False)
        for ref in refs_of(program):
            if ref.origin is RefOrigin.USER:
                assert not ref.kill

    def test_callee_save_restore_killed(self):
        source = (
            "int fib(int n) { if (n < 2) return n; "
            "return fib(n-1) + fib(n-2); } "
            "int main() { return fib(6); }"
        )
        program = compile_program(source, promotion="aggressive")
        restores = [
            r for r in refs_of(program, "fib", cls=Load)
            if r.origin is RefOrigin.CALLEE_SAVE
        ]
        assert restores
        for ref in restores:
            assert ref.flavor is RefFlavor.UMAM_LOAD
            assert ref.kill

    def test_callee_save_store_through_cache(self):
        source = (
            "int fib(int n) { if (n < 2) return n; "
            "return fib(n-1) + fib(n-2); } "
            "int main() { return fib(6); }"
        )
        program = compile_program(source, promotion="aggressive")
        saves = [
            r for r in refs_of(program, "fib", cls=Store)
            if r.origin is RefOrigin.CALLEE_SAVE
        ]
        assert saves
        for ref in saves:
            assert ref.flavor is RefFlavor.AMSP_STORE

    def test_hybrid_keeps_user_refs_cached(self):
        program = compile_program(SIMPLE, promotion="none",
                                  bypass_user_refs=False)
        user_refs = [
            r for r in refs_of(program) if r.origin is RefOrigin.USER
        ]
        assert user_refs
        for ref in user_refs:
            assert not ref.bypass
            assert ref.flavor in (RefFlavor.AM_LOAD, RefFlavor.AMSP_STORE)

    def test_hybrid_keeps_kill_bits(self):
        program = compile_program(SIMPLE, promotion="none",
                                  bypass_user_refs=False)
        loads = [
            r for r in refs_of(program, cls=Load)
            if r.access_path.startswith("x#")
        ]
        assert loads and all(ref.kill for ref in loads)

    def test_hybrid_still_bypasses_save_reloads(self):
        source = (
            "int fib(int n) { if (n < 2) return n; "
            "return fib(n-1) + fib(n-2); } "
            "int main() { return fib(6); }"
        )
        program = compile_program(source, promotion="aggressive",
                                  bypass_user_refs=False)
        restores = [
            r for r in refs_of(program, "fib", cls=Load)
            if r.origin is RefOrigin.CALLEE_SAVE
        ]
        assert restores
        for ref in restores:
            assert ref.flavor is RefFlavor.UMAM_LOAD and ref.kill

    def test_hybrid_semantics_preserved(self):
        from repro.programs import get_benchmark

        bench = get_benchmark("towers")
        program = compile_program(bench.source, promotion="aggressive",
                                  bypass_user_refs=False)
        assert tuple(program.run().output) == bench.expected_output

    def test_spill_bypass_option(self):
        source = (
            "int fib(int n) { if (n < 2) return n; "
            "return fib(n-1) + fib(n-2); } "
            "int main() { return fib(6); }"
        )
        program = compile_program(
            source, promotion="aggressive", spill_to_cache=False
        )
        saves = [
            r for r in refs_of(program, "fib", cls=Store)
            if r.origin is RefOrigin.CALLEE_SAVE
        ]
        for ref in saves:
            assert ref.flavor is RefFlavor.UMAM_STORE
            assert ref.bypass


class TestStaticReport:
    def test_percentages_sum(self):
        program = compile_program(ARRAY, promotion="none")
        report = program.static
        assert report.total == report.ambiguous + report.unambiguous
        assert report.total == report.loads + report.stores

    def test_rows_rendering(self):
        program = compile_program(ARRAY, promotion="none")
        rows = dict(program.static.rows())
        assert rows["static data references"] == program.static.total

    def test_by_function_breakdown(self):
        program = compile_program(
            "int f() { int y; y = 2; return y; } "
            "int main() { int x; x = f(); return x; }",
            promotion="none",
        )
        assert set(program.static.by_function) == {"f", "main"}

    def test_miller_ratio(self):
        program = compile_program(ARRAY, promotion="none")
        report = program.static
        assert report.miller_ratio == pytest.approx(
            report.unambiguous / report.ambiguous
        )


class TestAnnotationVerifier:
    def test_unannotated_module_rejected(self):
        from repro.lang.parser import parse_program
        from repro.lang.sema import analyze
        from repro.ir.builder import build_module
        from repro.ir.cfg import build_cfg

        module = build_module(analyze(parse_program(SIMPLE)))
        for function in module.functions.values():
            build_cfg(function)
        with pytest.raises(IRError):
            verify_annotations(module)
