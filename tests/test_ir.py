"""IR construction, CFG, dominators, loops, and verifier tests."""

import pytest

from repro.lang.errors import IRError
from repro.lang.parser import parse_program
from repro.lang.sema import analyze
from repro.ir.builder import build_module
from repro.ir.cfg import build_cfg, postorder, reverse_postorder
from repro.ir.dominators import DominatorTree
from repro.ir.instructions import (
    AddrOfSym,
    BinOp,
    Call,
    CJump,
    Jump,
    Load,
    Move,
    PReg,
    Print,
    RefOrigin,
    RegionKind,
    RegMem,
    Ret,
    Store,
    SymMem,
)
from repro.ir.loops import LoopInfo
from repro.ir.printer import format_function, format_module
from repro.ir.validate import verify_function, verify_module


def build(source):
    module = build_module(analyze(parse_program(source)))
    for function in module.functions.values():
        build_cfg(function)
    verify_module(module)
    return module


def instructions_of(module, name):
    return list(module.functions[name].instructions())


class TestLowering:
    def test_scalar_access_is_memory_resident(self):
        module = build("int main() { int x; x = 1; return x; }")
        insts = instructions_of(module, "main")
        stores = [i for i in insts if isinstance(i, Store)]
        loads = [i for i in insts if isinstance(i, Load)]
        assert any(isinstance(s.mem, SymMem) for s in stores)
        assert any(isinstance(l.mem, SymMem) for l in loads)

    def test_array_access_uses_computed_address(self):
        module = build("int a[4]; int main() { a[2] = 7; return a[2]; }")
        insts = instructions_of(module, "main")
        stores = [i for i in insts if isinstance(i, Store)]
        assert all(isinstance(s.mem, RegMem) for s in stores)
        assert stores[0].ref.region_kind is RegionKind.ARRAY

    def test_pointer_deref_region(self):
        module = build(
            "int f(int *p) { return *p; } int a[2]; "
            "int main() { return f(a); }"
        )
        loads = [
            i for i in instructions_of(module, "f")
            if isinstance(i, Load) and isinstance(i.mem, RegMem)
        ]
        assert loads[0].ref.region_kind is RegionKind.POINTER

    def test_arg_homing_stores(self):
        module = build("int f(int a, int b) { return a + b; } "
                       "int main() { return f(1, 2); }")
        stores = [
            i for i in instructions_of(module, "f") if isinstance(i, Store)
        ]
        assert [s.ref.origin for s in stores[:2]] == [
            RefOrigin.ARG_HOME, RefOrigin.ARG_HOME
        ]

    def test_call_lowering_moves_args_to_arg_registers(self):
        module = build("int f(int a) { return a; } "
                       "int main() { return f(41); }")
        insts = instructions_of(module, "main")
        call_index = next(
            i for i, inst in enumerate(insts) if isinstance(inst, Call)
        )
        move = insts[call_index - 1]
        assert isinstance(move, Move)
        assert move.dest is PReg(0)

    def test_return_through_r0(self):
        module = build("int main() { return 9; }")
        insts = instructions_of(module, "main")
        ret = insts[-1]
        assert isinstance(ret, Ret) and ret.has_value
        assert any(
            isinstance(i, Move) and i.dest is PReg(0) for i in insts
        )

    def test_void_function_implicit_return(self):
        module = build("void f() { } int main() { f(); return 0; }")
        terminator = module.functions["f"].entry.terminator
        assert isinstance(terminator, Ret) and not terminator.has_value

    def test_print_lowering(self):
        module = build("int main() { print(3); return 0; }")
        assert any(
            isinstance(i, Print) for i in instructions_of(module, "main")
        )

    def test_global_init_recorded(self):
        module = build("int x = 7; int main() { return x; }")
        symbol = module.globals[0]
        assert module.global_inits[symbol] == 7

    def test_global_layout_is_disjoint(self):
        module = build("int a[10]; int b; int c[3]; int main() { return 0; }")
        addresses = []
        for symbol in module.globals:
            size = symbol.type.size_words() if symbol.is_array() else 1
            addresses.append((symbol.global_address, size))
        addresses.sort()
        for (addr_a, size_a), (addr_b, _size_b) in zip(addresses, addresses[1:]):
            assert addr_a + size_a <= addr_b

    def test_frame_contains_locals_and_arrays(self):
        module = build("int main() { int x; int a[8]; a[0] = 1; x = a[0]; "
                       "return x; }")
        assert module.functions["main"].frame.size >= 9

    def test_short_circuit_creates_control_flow(self):
        module = build(
            "int main() { int x; x = 1; if (x > 0 && x < 10) return 1; "
            "return 0; }"
        )
        assert len(module.functions["main"].blocks) >= 4

    def test_addr_of_scalar(self):
        module = build(
            "int main() { int x; int *p; p = &x; *p = 3; return x; }"
        )
        assert any(
            isinstance(i, AddrOfSym)
            for i in instructions_of(module, "main")
        )

    def test_dead_code_after_return_pruned(self):
        module = build("int main() { return 1; print(2); return 3; }")
        insts = instructions_of(module, "main")
        assert not any(isinstance(i, Print) for i in insts)


class TestCFG:
    def test_entry_has_no_preds(self):
        module = build("int main() { int i; for (i=0;i<3;i++) ; return 0; }")
        assert module.functions["main"].entry.preds == []

    def test_loop_back_edge(self):
        module = build("int main() { int i; i = 0; while (i < 3) i = i + 1; "
                       "return i; }")
        function = module.functions["main"]
        loop_info = LoopInfo(function)
        assert len(loop_info.loops) == 1

    def test_nested_loop_depths(self):
        module = build(
            "int main() { int i; int j; int s; s = 0;"
            "for (i=0;i<2;i++) for (j=0;j<2;j++) s = s + 1; return s; }"
        )
        loop_info = LoopInfo(module.functions["main"])
        assert len(loop_info.loops) == 2
        assert max(loop_info.depth.values()) == 2

    def test_reverse_postorder_starts_at_entry(self):
        module = build("int main() { if (1) return 1; return 0; }")
        function = module.functions["main"]
        order = reverse_postorder(function)
        assert order[0] is function.entry

    def test_postorder_is_reverse_of_rpo(self):
        module = build("int main() { int i; for (i=0;i<3;i++) ; return 0; }")
        function = module.functions["main"]
        assert postorder(function) == list(reversed(reverse_postorder(function)))

    def test_rpo_covers_all_blocks(self):
        module = build(
            "int main() { int i; int s; s=0; for (i=0;i<3;i++) "
            "{ if (i>1) s+=i; else s-=i; } return s; }"
        )
        function = module.functions["main"]
        assert len(reverse_postorder(function)) == len(function.blocks)

    def test_succs_preds_are_consistent(self):
        module = build(
            "int main() { int i; for (i=0;i<3;i++) if (i) break; return i; }"
        )
        for block in module.functions["main"].blocks.values():
            for successor in block.succs:
                assert block in successor.preds
            for pred in block.preds:
                assert block in pred.succs


class TestDominators:
    def test_entry_dominates_everything(self):
        module = build(
            "int main() { int i; for (i=0;i<3;i++) { if (i) print(i); } "
            "return 0; }"
        )
        function = module.functions["main"]
        dom = DominatorTree(function)
        for name in function.blocks:
            assert dom.dominates(function.entry_name, name)

    def test_loop_header_dominates_body(self):
        module = build("int main() { int i; i=0; while (i<3) i=i+1; "
                       "return i; }")
        function = module.functions["main"]
        loop = LoopInfo(function).loops[0]
        dom = DominatorTree(function)
        for name in loop.body:
            assert dom.dominates(loop.header, name)

    def test_branches_do_not_dominate_join(self):
        module = build(
            "int main() { int x; x=0; if (x) x=1; else x=2; return x; }"
        )
        function = module.functions["main"]
        dom = DominatorTree(function)
        ret_block = next(
            block.name
            for block in function.blocks.values()
            if isinstance(block.terminator, Ret)
        )
        branch_blocks = [
            name for name in function.blocks
            if name != function.entry_name and name != ret_block
        ]
        dominating = [
            name for name in branch_blocks if dom.dominates(name, ret_block)
        ]
        assert len(dominating) <= 1  # Only a straight-line predecessor may.


class TestVerifier:
    def test_detects_missing_terminator(self):
        module = build("int main() { return 0; }")
        function = module.functions["main"]
        function.entry.instructions.pop()
        with pytest.raises(IRError):
            verify_function(function)

    def test_detects_unallocated_vreg(self):
        module = build("int main() { int x; x = 1; return x; }")
        with pytest.raises(IRError):
            verify_function(module.functions["main"], allocated=True)

    def test_detects_branch_to_unknown_block(self):
        module = build("int main() { return 0; }")
        function = module.functions["main"]
        function.entry.instructions[-1] = Jump("nowhere")
        with pytest.raises(IRError):
            verify_function(function)


class TestPrinter:
    def test_format_function_mentions_blocks(self):
        module = build("int main() { int i; for (i=0;i<2;i++) ; return i; }")
        text = format_function(module.functions["main"])
        assert "func main" in text
        assert "jump" in text

    def test_format_module_lists_globals(self):
        module = build("int g; int main() { return g; }")
        assert "globals:" in format_module(module)
