"""VM semantics tests: arithmetic, control flow, memory, errors."""

import pytest

from conftest import ALL_CONFIGS, compile_program, outputs, run_source

from repro.lang.errors import VMError


class TestArithmetic:
    def test_basic_operations(self):
        source = (
            "int main() { print(7 + 3); print(7 - 3); print(7 * 3); "
            "print(7 / 3); print(7 % 3); return 0; }"
        )
        assert outputs(source) == [10, 4, 21, 2, 1]

    def test_c_division_truncates_toward_zero(self):
        source = (
            "int main() { print(-7 / 2); print(7 / -2); print(-7 / -2); "
            "return 0; }"
        )
        assert outputs(source) == [-3, -3, 3]

    def test_c_modulo_sign_follows_dividend(self):
        source = (
            "int main() { print(-7 % 2); print(7 % -2); print(-7 % -2); "
            "return 0; }"
        )
        assert outputs(source) == [-1, 1, -1]

    def test_unary_operators(self):
        source = (
            "int main() { int x; x = 5; print(-x); print(!x); print(!0); "
            "return 0; }"
        )
        assert outputs(source) == [-5, 0, 1]

    def test_comparisons_produce_zero_one(self):
        source = (
            "int main() { print(3 < 4); print(4 < 3); print(3 <= 3); "
            "print(3 == 3); print(3 != 3); print(4 >= 5); print(5 > 4); "
            "return 0; }"
        )
        assert outputs(source) == [1, 0, 1, 1, 0, 0, 1]

    def test_division_by_zero_raises(self):
        with pytest.raises(VMError):
            run_source("int main() { int z; z = 0; return 5 / z; }")

    def test_modulo_by_zero_raises(self):
        with pytest.raises(VMError):
            run_source("int main() { int z; z = 0; return 5 % z; }")


class TestControlFlow:
    def test_if_else(self):
        source = (
            "int main() { int x; x = 3; if (x > 2) print(1); else print(2); "
            "if (x > 5) print(3); else print(4); return 0; }"
        )
        assert outputs(source) == [1, 4]

    def test_while_loop(self):
        source = (
            "int main() { int i; int s; i = 0; s = 0; "
            "while (i < 5) { s = s + i; i = i + 1; } print(s); return 0; }"
        )
        assert outputs(source) == [10]

    def test_do_while_runs_at_least_once(self):
        source = (
            "int main() { int i; i = 100; do { print(i); i = i + 1; } "
            "while (i < 3); return 0; }"
        )
        assert outputs(source) == [100]

    def test_for_loop_with_break_continue(self):
        source = (
            "int main() { int i; for (i = 0; i < 10; i++) { "
            "if (i == 3) continue; if (i == 6) break; print(i); } "
            "return 0; }"
        )
        assert outputs(source) == [0, 1, 2, 4, 5]

    def test_short_circuit_and(self):
        source = (
            "int g; "
            "int touch() { g = g + 1; return 1; } "
            "int main() { g = 0; if (0 && touch()) print(-1); print(g); "
            "if (1 && touch()) print(g); return 0; }"
        )
        assert outputs(source) == [0, 1]

    def test_short_circuit_or(self):
        source = (
            "int g; "
            "int touch() { g = g + 1; return 0; } "
            "int main() { g = 0; if (1 || touch()) print(g); "
            "if (0 || touch()) print(-1); print(g); return 0; }"
        )
        assert outputs(source) == [0, 1]

    def test_boolean_value_materialisation(self):
        source = (
            "int main() { int x; x = (3 > 2) && (1 < 2); print(x); "
            "x = (3 > 2) && (1 > 2); print(x); return 0; }"
        )
        assert outputs(source) == [1, 0]

    def test_nested_loops(self):
        source = (
            "int main() { int i; int j; int s; s = 0; "
            "for (i = 0; i < 4; i++) for (j = 0; j < i; j++) s += 1; "
            "print(s); return 0; }"
        )
        assert outputs(source) == [6]


class TestFunctions:
    def test_four_arguments(self):
        source = (
            "int f(int a, int b, int c, int d) { "
            "return a * 1000 + b * 100 + c * 10 + d; } "
            "int main() { print(f(1, 2, 3, 4)); return 0; }"
        )
        assert outputs(source) == [1234]

    def test_nested_calls_as_arguments(self):
        source = (
            "int inc(int x) { return x + 1; } "
            "int add(int a, int b) { return a + b; } "
            "int main() { print(add(inc(1), inc(10))); return 0; }"
        )
        assert outputs(source) == [13]

    def test_deep_recursion(self):
        source = (
            "int depth(int n) { if (n == 0) return 0; "
            "return 1 + depth(n - 1); } "
            "int main() { print(depth(500)); return 0; }"
        )
        assert outputs(source) == [500]

    def test_mutual_recursion(self):
        source = (
            "int is_odd(int n); "
            "int is_even(int n) { if (n == 0) return 1; "
            "return is_odd(n - 1); } "
            "int is_odd(int n) { if (n == 0) return 0; "
            "return is_even(n - 1); } "
            "int main() { print(is_even(10)); print(is_odd(10)); return 0; }"
        )
        # MiniC has no declarations without bodies; rewrite without one.
        source = (
            "int is_even(int n) { if (n == 0) return 1; "
            "return is_odd(n - 1); } "
            "int is_odd(int n) { if (n == 0) return 0; "
            "return is_even(n - 1); } "
            "int main() { print(is_even(10)); print(is_odd(10)); return 0; }"
        )
        assert outputs(source) == [1, 0]

    def test_stack_overflow_detected(self):
        source = (
            "int forever(int n) { return forever(n + 1); } "
            "int main() { return forever(0); }"
        )
        with pytest.raises(VMError):
            run_source(source)

    def test_step_budget_enforced(self):
        program = compile_program("int main() { while (1) ; return 0; }")
        with pytest.raises(VMError):
            program.run(max_steps=10_000)


class TestMemory:
    def test_pointer_swap(self):
        source = """
        void swap(int *x, int *y) { int t; t = *x; *x = *y; *y = t; }
        int main() {
            int a; int b;
            a = 1; b = 2;
            swap(&a, &b);
            print(a); print(b);
            return 0;
        }
        """
        assert outputs(source) == [2, 1]

    def test_array_walk_with_pointer(self):
        source = """
        int a[5];
        int main() {
            int *p; int i; int s;
            for (i = 0; i < 5; i++) a[i] = i + 1;
            s = 0;
            for (p = a; p < a + 5; p = p + 1) s = s + *p;
            print(s);
            return 0;
        }
        """
        assert outputs(source) == [15]

    def test_pointer_difference(self):
        source = """
        int a[10];
        int main() { int *p; int *q; p = &a[2]; q = &a[7]; print(q - p);
                     return 0; }
        """
        assert outputs(source) == [5]

    def test_local_array(self):
        source = (
            "int main() { int a[4]; int i; "
            "for (i = 0; i < 4; i++) a[i] = 10 * i; "
            "print(a[0] + a[1] + a[2] + a[3]); return 0; }"
        )
        assert outputs(source) == [60]

    def test_global_initializers(self):
        source = "int x = 41; int y = -7; int main() { print(x); print(y); " \
                 "return 0; }"
        assert outputs(source) == [41, -7]

    def test_null_dereference_detected(self):
        source = "int main() { int *p; p = 0; return *p; }"
        with pytest.raises(VMError):
            run_source(source)

    def test_set_and_get_global_api(self):
        program = compile_program(
            "int data[4]; int n;"
            "int main() { int i; int s; s = 0; "
            "for (i = 0; i < n; i++) s += data[i]; return s; }"
        )
        vm = program.machine()
        vm.set_global("n", 3)
        for index, value in enumerate([5, 6, 7]):
            vm.set_global("data", value, index)
        result = vm.run()
        assert result.return_value == 18
        assert vm.get_global("n") == 3

    def test_distinct_frames_for_recursion(self):
        source = """
        int collatz_len(int n) {
            int local;
            local = n;
            if (local == 1) return 1;
            if (local % 2 == 0) return 1 + collatz_len(local / 2);
            return 1 + collatz_len(3 * local + 1);
        }
        int main() { print(collatz_len(27)); return 0; }
        """
        assert outputs(source) == [112]


class TestAllConfigurations:
    @pytest.mark.parametrize("scheme,promotion", ALL_CONFIGS)
    def test_semantics_identical_everywhere(self, scheme, promotion):
        source = """
        int g;
        int a[8];
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int sum(int *p, int n) { int s; int i; s = 0;
            for (i = 0; i < n; i++) s += p[i]; return s; }
        int main() {
            int i;
            for (i = 0; i < 8; i++) a[i] = fib(i);
            g = sum(a, 8);
            print(g);
            print(a[7]);
            return g;
        }
        """
        result = run_source(source, scheme=scheme, promotion=promotion)
        assert result.output == [33, 13]
        assert result.return_value == 33

    @pytest.mark.parametrize("scheme,promotion", ALL_CONFIGS)
    def test_pointer_heavy_program_everywhere(self, scheme, promotion):
        source = """
        int buf[6];
        void fill(int *p, int n, int v) {
            int i;
            for (i = 0; i < n; i++) p[i] = v + i;
        }
        int main() {
            int *p;
            fill(buf, 6, 100);
            p = buf + 3;
            *p = *p + buf[0];
            print(buf[3]);
            return 0;
        }
        """
        result = run_source(source, scheme=scheme, promotion=promotion)
        assert result.output == [203]
