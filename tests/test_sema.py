"""Semantic-analysis tests: typing, scoping, and alias-relevant flags."""

import pytest

from repro.lang.errors import SemanticError
from repro.lang.parser import parse_program
from repro.lang.sema import analyze


def check(source):
    return analyze(parse_program(source))


def find_symbol(analyzed, name):
    for func in analyzed.program.functions():
        for param in func.params:
            if param.name == name:
                return param.symbol
    from repro.lang import ast_nodes as ast
    from repro.lang.ast_nodes import walk

    for func in analyzed.program.functions():
        for node in walk(func.body):
            if isinstance(node, ast.VarDecl) and node.name == name:
                return node.symbol
    for symbol in analyzed.globals:
        if symbol.name == name:
            return symbol
    raise KeyError(name)


class TestScoping:
    def test_global_visible_in_function(self):
        check("int g; int main() { g = 1; return g; }")

    def test_undeclared_name(self):
        with pytest.raises(SemanticError):
            check("int main() { x = 1; return 0; }")

    def test_local_shadows_global(self):
        analyzed = check("int x; int main() { int x; x = 2; return x; }")
        assert analyzed is not None

    def test_block_scope_ends(self):
        with pytest.raises(SemanticError):
            check("int main() { { int x; } x = 1; return 0; }")

    def test_redeclaration_same_scope(self):
        with pytest.raises(SemanticError):
            check("int main() { int x; int x; return 0; }")

    def test_redeclaration_in_inner_scope_ok(self):
        check("int main() { int x; { int x; } return 0; }")

    def test_for_init_scope(self):
        with pytest.raises(SemanticError):
            check("int main() { for (int i = 0; i < 3; i++) ; return i; }")

    def test_duplicate_function(self):
        with pytest.raises(SemanticError):
            check("int f() { return 0; } int f() { return 1; }")

    def test_forward_function_reference(self):
        check("int f() { return g(); } int g() { return 1; } "
              "int main() { return f(); }")

    def test_function_used_as_value(self):
        with pytest.raises(SemanticError):
            check("int f() { return 0; } int main() { return f + 1; }")


class TestTyping:
    def test_arithmetic_ok(self):
        check("int main() { int x; x = 1 + 2 * 3 % 4 / 2 - 1; return x; }")

    def test_pointer_plus_int(self):
        check("int a[4]; int main() { int *p; p = a + 2; return *p; }")

    def test_int_plus_pointer(self):
        check("int a[4]; int main() { int *p; p = 2 + a; return *p; }")

    def test_pointer_minus_pointer_is_int(self):
        check("int a[4]; int main() { int *p; int *q; p = a; q = a + 2; "
              "return q - p; }")

    def test_pointer_times_int_rejected(self):
        with pytest.raises(SemanticError):
            check("int a[4]; int main() { int *p; p = a; return *(p * 2); }")

    def test_assign_pointer_to_int_rejected(self):
        with pytest.raises(SemanticError):
            check("int a[4]; int main() { int x; x = a; return x; }")

    def test_assign_int_to_pointer_rejected(self):
        with pytest.raises(SemanticError):
            check("int main() { int *p; p = 5; return 0; }")

    def test_null_pointer_constant_ok(self):
        check("int main() { int *p; p = 0; return 0; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(SemanticError):
            check("int a[4]; int b[4]; int main() { a = b; return 0; }")

    def test_index_requires_array_or_pointer(self):
        with pytest.raises(SemanticError):
            check("int main() { int x; return x[0]; }")

    def test_index_must_be_int(self):
        with pytest.raises(SemanticError):
            check("int a[4]; int main() { int *p; p = a; return a[p]; }")

    def test_deref_requires_pointer(self):
        with pytest.raises(SemanticError):
            check("int main() { int x; return *x; }")

    def test_deref_array_ok(self):
        check("int a[4]; int main() { return *a; }")

    def test_addr_of_expression_rejected(self):
        with pytest.raises(SemanticError):
            check("int main() { int x; int *p; p = &(x + 1); return 0; }")

    def test_no_pointer_to_pointer(self):
        with pytest.raises(SemanticError):
            check("int main() { int *p; int *q; q = &p; return 0; }")

    def test_compare_pointer_with_pointer(self):
        check("int a[4]; int main() { int *p; int *q; p = a; q = a; "
              "return p == q; }")

    def test_compare_pointer_with_int_rejected(self):
        with pytest.raises(SemanticError):
            check("int a[2]; int main() { int *p; int x; p = a; x = 1; "
                  "return p < x; }")


class TestFunctionsAndCalls:
    def test_arg_count_mismatch(self):
        with pytest.raises(SemanticError):
            check("int f(int a) { return a; } int main() { return f(1, 2); }")

    def test_arg_type_mismatch(self):
        with pytest.raises(SemanticError):
            check("int f(int *p) { return *p; } int main() { return f(3); }")

    def test_array_decays_to_pointer_arg(self):
        check("int a[4]; int f(int *p) { return *p; } "
              "int main() { return f(a); }")

    def test_array_param_syntax(self):
        check("int a[4]; int f(int p[]) { return p[0]; } "
              "int main() { return f(a); }")

    def test_too_many_params(self):
        with pytest.raises(SemanticError):
            check("int f(int a, int b, int c, int d, int e) { return 0; }")

    def test_void_return_with_value_rejected(self):
        with pytest.raises(SemanticError):
            check("void f() { return 3; }")

    def test_int_return_without_value_rejected(self):
        with pytest.raises(SemanticError):
            check("int f() { return; }")

    def test_call_undeclared(self):
        with pytest.raises(SemanticError):
            check("int main() { return nothere(); }")

    def test_print_intrinsic(self):
        check("int main() { print(42); return 0; }")

    def test_print_arity(self):
        with pytest.raises(SemanticError):
            check("int main() { print(1, 2); return 0; }")

    def test_cannot_redefine_print(self):
        with pytest.raises(SemanticError):
            check("void print(int x) { }")


class TestControlChecks:
    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            check("int main() { break; return 0; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError):
            check("int main() { continue; return 0; }")

    def test_break_in_nested_loop_ok(self):
        check("int main() { while (1) { for (;;) break; break; } return 0; }")


class TestGlobals:
    def test_global_constant_initializer(self):
        analyzed = check("int x = -5;")
        decl = analyzed.program.globals()[0]
        assert decl.const_init == -5

    def test_global_nonconstant_initializer_rejected(self):
        with pytest.raises(SemanticError):
            check("int y; int x = y + 1;")

    def test_pointer_global_nonzero_rejected(self):
        with pytest.raises(SemanticError):
            check("int *p = 5;")

    def test_array_local_initializer_rejected(self):
        with pytest.raises(SemanticError):
            check("int main() { int a[3] = 1; return 0; }")


class TestAliasFlags:
    def test_address_taken_flag(self):
        analyzed = check(
            "int main() { int x; int *p; p = &x; *p = 1; return x; }"
        )
        assert find_symbol(analyzed, "x").address_taken

    def test_plain_scalar_not_address_taken(self):
        analyzed = check("int main() { int x; x = 1; return x; }")
        assert not find_symbol(analyzed, "x").address_taken

    def test_array_escape_via_call(self):
        analyzed = check(
            "int a[4]; int f(int *p) { return *p; } "
            "int main() { return f(a); }"
        )
        assert find_symbol(analyzed, "a").escapes

    def test_array_escape_via_assignment(self):
        analyzed = check(
            "int a[4]; int main() { int *p; p = a; return *p; }"
        )
        assert find_symbol(analyzed, "a").escapes

    def test_array_direct_indexing_does_not_escape(self):
        analyzed = check("int a[4]; int main() { a[0] = 1; return a[0]; }")
        assert not find_symbol(analyzed, "a").escapes

    def test_addr_of_element_escapes_array(self):
        analyzed = check(
            "int a[4]; int main() { int *p; p = &a[2]; return *p; }"
        )
        assert find_symbol(analyzed, "a").escapes

    def test_expression_types_filled(self):
        analyzed = check("int main() { int x; x = 1 + 2; return x; }")
        func = analyzed.program.functions()[0]
        from repro.lang import ast_nodes as ast
        from repro.lang.ast_nodes import walk

        for node in walk(func.body):
            if isinstance(node, ast.Expr):
                assert node.type is not None
