"""Smoke tests for the one-command reproduction report."""

from repro.evalharness.fullreport import build_report, main


class TestReport:
    def test_fast_report_contains_sections(self):
        report = build_report(fast=True)
        assert "Figure 5" in report
        assert "Dead-line" in report
        assert "Spill-to-cache" in report
        assert "towers" in report
        assert "paper" in report

    def test_fast_report_excludes_slow_sections(self):
        report = build_report(fast=True)
        assert "Combined I+D" not in report
        assert "Total memory access time" not in report

    def test_cli_fast(self, capsys):
        assert main(["--fast"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
