"""Smoke tests for the one-command reproduction report."""

import pytest

import repro.programs.registry as registry
from repro.evalharness.fullreport import build_report, format_failures, main


class TestReport:
    def test_fast_report_contains_sections(self):
        report = build_report(fast=True)
        assert "Figure 5" in report
        assert "Dead-line" in report
        assert "Spill-to-cache" in report
        assert "towers" in report
        assert "paper" in report

    def test_fast_report_excludes_slow_sections(self):
        report = build_report(fast=True)
        assert "Combined I+D" not in report
        assert "Total memory access time" not in report

    def test_cli_fast(self, capsys):
        assert main(["--fast"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out

    def test_cli_accepts_seed_and_max_steps(self, capsys):
        assert main(["--fast", "--seed", "7", "--max-steps",
                     "100000000"]) == 0
        assert "Reproduction report" in capsys.readouterr().out


@pytest.fixture
def broken_towers(monkeypatch):
    def broken(paper_scale=False):
        raise KeyError("synthetic benchmark corruption")

    monkeypatch.setitem(registry._FACTORIES, "towers", broken)


class TestGracefulDegradation:
    OTHER_FIVE = ("bubble", "intmm", "puzzle", "queen", "sieve")

    def test_broken_benchmark_degrades_not_aborts(self, broken_towers):
        failures = []
        report = build_report(fast=True, failures=failures)
        for name in self.OTHER_FIVE:
            assert name in report
        assert failures
        sections = {record["section"] for record in failures}
        assert "figure5" in sections
        assert "kill-bits" in sections  # that section is towers-only
        assert all(
            record["error_type"] == "KeyError" for record in failures
        )

    def test_without_failures_list_errors_propagate(self, broken_towers):
        with pytest.raises(KeyError):
            build_report(fast=True)

    def test_cli_reports_and_exits_nonzero(self, broken_towers, capsys):
        assert main(["--fast"]) == 1
        captured = capsys.readouterr()
        for name in self.OTHER_FIVE:
            assert name in captured.out
        assert "experiment(s) failed" in captured.err
        assert "towers" in captured.err

    def test_format_failures_lists_each_record(self):
        text = format_failures(
            [
                {
                    "section": "figure5",
                    "item": "towers",
                    "error_type": "KeyError",
                    "stage": "unknown",
                    "kind": None,
                    "original_type": None,
                    "message": "boom",
                }
            ]
        )
        assert "figure5/towers" in text
        assert "KeyError" in text
