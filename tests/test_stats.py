"""Unit tests for CacheStats derived metrics and comparisons."""

import pytest

from repro.cache.stats import CacheStats, ComparisonRow


class TestDerivedRates:
    def test_miss_rate_over_cached_refs_only(self):
        stats = CacheStats(refs_total=10, refs_cached=4, refs_bypassed=6,
                           hits=3, misses=1)
        assert stats.miss_rate == pytest.approx(0.25)
        assert stats.hit_rate == pytest.approx(0.75)

    def test_rates_with_no_cached_refs(self):
        stats = CacheStats(refs_total=5, refs_bypassed=5)
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0

    def test_bus_words(self):
        stats = CacheStats(words_from_memory=7, words_to_memory=3)
        assert stats.bus_words == 10

    def test_percent_bypassed(self):
        stats = CacheStats(refs_total=8, refs_bypassed=2)
        assert stats.percent_bypassed == pytest.approx(25.0)
        assert CacheStats().percent_bypassed == 0.0

    def test_as_dict_round_numbers(self):
        stats = CacheStats(refs_total=3, refs_cached=3, hits=1, misses=2)
        data = stats.as_dict()
        assert data["refs_total"] == 3
        assert data["miss_rate"] == pytest.approx(2 / 3, abs=1e-4)


class TestReductions:
    def test_cache_traffic_reduction(self):
        unified = CacheStats(refs_cached=40)
        conventional = CacheStats(refs_cached=100)
        assert unified.cache_traffic_reduction_vs(conventional) == (
            pytest.approx(60.0)
        )

    def test_reduction_with_empty_baseline(self):
        assert CacheStats().cache_traffic_reduction_vs(CacheStats()) == 0.0

    def test_bus_reduction_can_be_negative(self):
        unified = CacheStats(words_from_memory=20)
        conventional = CacheStats(words_from_memory=10)
        assert unified.bus_traffic_reduction_vs(conventional) == (
            pytest.approx(-100.0)
        )

    def test_comparison_row(self):
        row = ComparisonRow(
            name="x",
            unified=CacheStats(refs_cached=30, words_from_memory=5),
            conventional=CacheStats(refs_cached=60, words_from_memory=10),
        )
        assert row.cache_traffic_reduction == pytest.approx(50.0)
        assert row.bus_traffic_reduction == pytest.approx(50.0)
