"""Benchmark program tests: differential correctness across configs."""

import pytest

from conftest import compile_program

from repro.programs import BENCHMARK_NAMES, get_benchmark, iter_benchmarks
from repro.programs import bubble, intmm, queen, sieve, towers


class TestRegistry:
    def test_all_names_present(self):
        assert set(BENCHMARK_NAMES) == {
            "bubble", "intmm", "puzzle", "queen", "sieve", "towers"
        }

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("doom")

    def test_iter_order_matches_figure5(self):
        names = [bench.name for bench in iter_benchmarks()]
        assert names == list(BENCHMARK_NAMES)

    def test_paper_scale_params(self):
        bench = get_benchmark("bubble", paper_scale=True)
        assert bench.params["n"] == 500
        bench = get_benchmark("towers", paper_scale=True)
        assert bench.params["n"] == 18
        bench = get_benchmark("sieve", paper_scale=True)
        assert bench.params == {"size": 8190, "iterations": 10}


class TestReferenceOracles:
    def test_queen_8_has_92_solutions(self):
        assert queen.reference_output(8) == [92]

    def test_queen_6_has_4_solutions(self):
        assert queen.reference_output(6) == [4]

    def test_sieve_counts_1899_primes(self):
        assert sieve.reference_output(8190, 1) == [1899]

    def test_towers_moves(self):
        assert towers.reference_output(5) == [31, 0]

    def test_bubble_is_sorted(self):
        out = bubble.reference_output(50)
        assert out[2] == 1  # sortedness flag
        assert out[0] <= out[1]

    def test_intmm_symmetry_of_reference(self):
        # The oracle must be deterministic.
        assert intmm.reference_output(8) == intmm.reference_output(8)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestBenchmarksRun:
    def test_unified_matches_reference(self, name):
        bench = get_benchmark(name)
        program = compile_program(bench.source, scheme="unified",
                                  promotion="modest")
        result = program.run()
        assert tuple(result.output) == bench.expected_output

    def test_conventional_matches_reference(self, name):
        bench = get_benchmark(name)
        program = compile_program(bench.source, scheme="conventional",
                                  promotion="modest")
        result = program.run()
        assert tuple(result.output) == bench.expected_output


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
@pytest.mark.parametrize("promotion", ["none", "aggressive"])
def test_benchmarks_across_promotion(name, promotion):
    bench = get_benchmark(name)
    program = compile_program(bench.source, promotion=promotion)
    result = program.run()
    assert tuple(result.output) == bench.expected_output


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_annotations_never_change_instruction_stream(name):
    """The unified and conventional compiles execute the identical
    instruction sequence — annotations are metadata only.  This is the
    invariant that lets the harness reuse one trace for both schemes."""
    bench = get_benchmark(name)
    unified = compile_program(bench.source, scheme="unified")
    conventional = compile_program(bench.source, scheme="conventional")
    result_u = unified.run()
    result_c = conventional.run()
    assert result_u.steps == result_c.steps
    assert result_u.output == result_c.output


@pytest.mark.parametrize("name", ["bubble", "towers", "sieve"])
def test_small_scale_variants_run(name):
    """Smaller-than-default sizes also work (size-sweep support)."""
    sources = {
        "bubble": bubble.source(20),
        "towers": towers.source(5),
        "sieve": sieve.source(100, 1),
    }
    references = {
        "bubble": bubble.reference_output(20),
        "towers": towers.reference_output(5),
        "sieve": sieve.reference_output(100, 1),
    }
    program = compile_program(sources[name])
    assert program.run().output == references[name]
