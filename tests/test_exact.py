"""The exact refinement pass: uncertainty routing, focused
exploration, tier soundness.

Directed tests pin each verdict tier to a hand-built scenario — the
worked example where must/may loses a fact to call havoc and the
exploration wins it back, bypass/kill-interacting exact verdicts, the
persistence certificate, input-dependent routing, budget exhaustion,
and the non-LRU refusal — and every exact verdict is audited per
event against the real cache by the cross-validator.  The Hypothesis
property does the same over generated programs across scheme and
promotion configurations.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import CacheConfig
from repro.errors import ResourceExhausted
from repro.ir.instructions import Load, Store
from repro.staticcheck.crossval import cross_validate
from repro.staticcheck.exact import DEFAULT_EXACT_BUDGET, _exhausted
from repro.staticcheck.mustmay import (
    DEFINITE_VERDICTS,
    TIER_OF,
    TIERS,
    Classification,
    analyze_program,
)
from repro.staticcheck.uncertainty import compute_footprint
from repro.unified.pipeline import CompilationOptions, compile_source

CONFIG = CacheConfig(size_words=8, line_words=1, associativity=2,
                     policy="lru")  # 4 sets


def compile_none(source, scheme="unified", **kwargs):
    return compile_source(
        source, CompilationOptions(scheme=scheme, promotion="none", **kwargs)
    )


def ref_in(program, function, cls, path_contains=""):
    """The first Load/Store in ``function`` whose path matches."""
    fn = program.module.functions[function]
    for instruction in fn.instructions():
        if isinstance(instruction, cls) and (
            path_contains in instruction.ref.access_path
        ):
            return instruction
    raise AssertionError("no matching reference")


def verdicts(analysis):
    return Counter(site.classification.value for site in analysis.sites)


#: Two globals, a callee that touches only the *other* set, and a
#: reload after the call: must/may havocs its must-facts at the call
#: and leaves the reload unknown; the exploration models f exactly
#: and proves the hit.  (The worked example in docs/STATIC_ANALYSIS.md.)
WORKED_EXAMPLE = (
    "int g; int h;"
    "int f() { h = 2; return 0; }"
    "int main() { g = 1; f(); return g; }"
)


class TestWorkedExample:
    def test_mustmay_alone_says_unknown(self):
        program = compile_none(WORKED_EXAMPLE, scheme="conventional")
        analysis = analyze_program(program, CONFIG)
        reload_site = analysis.sites[-1]
        assert reload_site.classification is Classification.UNKNOWN

    def test_exact_pass_proves_the_hit(self):
        program = compile_none(WORKED_EXAMPLE, scheme="conventional")
        analysis = analyze_program(program, CONFIG, exact=True)
        reload_site = analysis.sites[-1]
        assert reload_site.classification is Classification.EXACT_HIT
        assert analysis.refinement.exact_hit_sites == 1
        assert analysis.refinement.explored_sites == 1
        assert not analysis.refinement.exhausted
        assert analysis.static_definite_percent == 100.0

    def test_exact_hit_survives_the_audit(self):
        program = compile_none(WORKED_EXAMPLE, scheme="conventional")
        analysis = analyze_program(program, CONFIG, exact=True)
        report = cross_validate(program, CONFIG, analysis=analysis)
        assert report.mismatches == []
        assert report.dynamic_decided_percent == 100.0
        assert report.event_tiers["exact"] > 0


#: The callee reads ``g`` before main's reload — annotating that read
#: changes the reload's outcome, and the exploration must track it
#: through the same transfer semantics the cache applies.
INTERACTION_EXAMPLE = (
    "int g; int h;"
    "int f() { h = g; return 0; }"
    "int main() { g = 1; f(); return g; }"
)


class TestBypassKillInteraction:
    def _check(self, mutate, expected):
        program = compile_none(INTERACTION_EXAMPLE, scheme="conventional")
        mutate(program)
        analysis = analyze_program(program, CONFIG, exact=True)
        reload_site = analysis.sites[-1]
        assert reload_site.classification is expected
        report = cross_validate(program, CONFIG, analysis=analysis)
        assert report.mismatches == []

    def test_plain_callee_read_keeps_the_hit(self):
        self._check(lambda p: None, Classification.EXACT_HIT)

    def test_bypassed_callee_read_turns_it_into_a_miss(self):
        # The bypass takes g's line out of the cache on its way by.
        def mutate(program):
            ref_in(program, "f", Load, "g").ref.bypass = True

        self._check(mutate, Classification.EXACT_MISS)

    def test_killed_callee_read_turns_it_into_a_miss(self):
        # A killed read leaves the line invalid (invalidate mode).
        def mutate(program):
            ref_in(program, "f", Load, "g").ref.kill = True

        self._check(mutate, Classification.EXACT_MISS)

    def test_killed_callee_write_turns_it_into_a_miss(self):
        # A killed store retires its own line after the transient
        # allocate: nothing stays resident for the reload.
        program = compile_none(
            "int g;"
            "int f() { g = 2; return 0; }"
            "int main() { g = 1; f(); return g; }",
            scheme="conventional",
        )
        ref_in(program, "f", Store, "g").ref.kill = True
        analysis = analyze_program(program, CONFIG, exact=True)
        assert analysis.sites[-1].classification is Classification.EXACT_MISS
        report = cross_validate(program, CONFIG, analysis=analysis)
        assert report.mismatches == []


SMALL_ARRAY = (
    "int a[4]; int s; int main() { int i; "
    "for (i = 0; i < 4; i = i + 1) { a[i] = i; } "
    "for (i = 0; i < 4; i = i + 1) { s = s + a[i]; } return s; }"
)

BIG_ARRAY = SMALL_ARRAY.replace("4", "16")


class TestRoutingTiers:
    def test_certified_array_reads_become_persistent(self):
        # Four words over four sets: demand 1 <= associativity 2, so
        # every set is eviction-free and presence is pure history.
        program = compile_none(SMALL_ARRAY)
        analysis = analyze_program(program, CONFIG, exact=True)
        tally = verdicts(analysis)
        assert tally["exact-persistent"] == 2
        assert tally["unknown"] == 0
        report = cross_validate(program, CONFIG, analysis=analysis)
        assert report.mismatches == []
        assert report.dynamic_classified_percent == 100.0

    def test_oversubscribed_array_reads_are_input_dependent(self):
        # Sixteen words over four 2-way sets: demand 4 per set, no
        # certificate, and the unknown-index reread genuinely turns on
        # the run-time index values.
        program = compile_none(BIG_ARRAY)
        analysis = analyze_program(program, CONFIG, exact=True)
        tally = verdicts(analysis)
        assert tally["input-dependent"] == 2
        assert tally["unknown"] == 0
        report = cross_validate(program, CONFIG, analysis=analysis)
        assert report.mismatches == []
        assert report.dynamic_decided_percent == 100.0
        assert report.dynamic_classified_percent < 100.0

    def test_footprint_certificates(self):
        program = compile_none(SMALL_ARRAY)
        analysis = analyze_program(program, CONFIG)
        footprint = compute_footprint(analysis)
        assert footprint.concrete
        assert footprint.all_certified
        big = analyze_program(compile_none(BIG_ARRAY), CONFIG)
        big_footprint = compute_footprint(big)
        assert big_footprint.concrete
        assert not big_footprint.certified_sets


class TestDegradation:
    def test_budget_exhaustion_degrades_to_fallback(self):
        program = compile_none(WORKED_EXAMPLE, scheme="conventional")
        analysis = analyze_program(
            program, CONFIG, exact=True, exact_budget=1
        )
        refinement = analysis.refinement
        assert refinement.exhausted
        assert refinement.budget == 1
        # The reload keeps the persistence certificate instead of the
        # explored verdict — still definite, still audited clean.
        reload_site = analysis.sites[-1]
        assert reload_site.classification is Classification.EXACT_PERSISTENT
        report = cross_validate(program, CONFIG, analysis=analysis)
        assert report.mismatches == []

    def test_default_budget_is_generous(self):
        program = compile_none(WORKED_EXAMPLE, scheme="conventional")
        analysis = analyze_program(program, CONFIG, exact=True)
        assert analysis.refinement.budget == DEFAULT_EXACT_BUDGET
        assert analysis.refinement.steps_used < 100

    def test_exhaustion_error_is_stage_tagged(self):
        error = _exhausted(5, 1)
        assert isinstance(error, ResourceExhausted)
        assert error.stage == "static-analysis"
        assert "transfer steps" in str(error)

    def test_non_lru_policy_refuses_exploration(self):
        fifo = CacheConfig(size_words=8, line_words=1, associativity=2,
                           policy="fifo")
        program = compile_none(WORKED_EXAMPLE, scheme="conventional")
        analysis = analyze_program(program, fifo, exact=True)
        refinement = analysis.refinement
        assert "non-LRU replacement" in refinement.refusal_reasons
        assert refinement.refused_sites == 1
        # The demand certificate is policy-independent, so the
        # fallback still upgrades the site.
        assert analysis.sites[-1].classification is (
            Classification.EXACT_PERSISTENT
        )
        report = cross_validate(program, fifo, analysis=analysis)
        assert report.mismatches == []


class TestTierBookkeeping:
    def test_tier_constants_cover_the_enum(self):
        assert set(TIER_OF) == set(Classification)
        assert set(TIER_OF.values()) == set(TIERS)
        assert all(
            TIER_OF[verdict] in ("always", "exact")
            for verdict in DEFINITE_VERDICTS
        )

    def test_exact_layer_is_opt_in(self):
        program = compile_none(WORKED_EXAMPLE, scheme="conventional")
        analysis = analyze_program(program, CONFIG)
        assert analysis.refinement is None
        assert any(
            site.classification is Classification.UNKNOWN
            for site in analysis.sites
        )


# ----------------------------------------------------------------------
# The property: on generated programs, every exact verdict agrees
# with the replayed cache across scheme/promotion configurations.
# ----------------------------------------------------------------------

GEOMETRIES = (
    CacheConfig(size_words=8, line_words=1, associativity=2, policy="lru"),
    CacheConfig(size_words=64, line_words=1, associativity=4, policy="lru"),
)


class TestGeneratedPrograms:
    @given(
        seed=st.integers(0, 400),
        scheme=st.sampled_from(["unified", "conventional"]),
        promotion=st.sampled_from(["none", "modest", "aggressive"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_exact_verdicts_survive_replay(self, seed, scheme, promotion):
        from repro.robustness.generator import generate_program

        generated = generate_program(seed)
        program = compile_source(
            generated.source,
            CompilationOptions(scheme=scheme, promotion=promotion),
        )
        for geometry in GEOMETRIES:
            analysis = analyze_program(
                program, geometry, exact=True, exact_budget=50_000
            )
            report = cross_validate(program, geometry, analysis=analysis)
            assert report.mismatches == []
            # Tier counts add up and decided >= definite always.
            assert sum(report.event_tiers.values()) == report.events_total
            assert (report.dynamic_decided_percent
                    >= report.dynamic_classified_percent)
