"""Acceptance battery for the chaos work (ISSUE 6).

Under pinned seeded fault plans, every injected failure class must end
in exactly one of the three sanctioned outcomes — retry-success,
quarantine-with-recorded-reason, or serial fallback — and **never a
wrong result**: whenever a run converges, its results are
bit-identical to the clean baseline.  The golden Figure 5 table must
survive a full store-and-worker chaos schedule unchanged, and a
checkpointed parallel Figure 5 run killed mid-flight (via the injected
``interrupt_after``) must resume bit-identically from its journal.
"""

import pytest

from repro import faultinject
from repro.evalharness.artifacts import ArtifactCache
from repro.evalharness.figure5 import figure5_table, format_figure5
from repro.evalharness.parallel import (
    EvalUnit,
    Journal,
    Supervisor,
    run_units,
)

UNITS = (EvalUnit(name="towers"), EvalUnit(name="queen"))

#: Pinned chaos seeds; the CI chaos job runs the suite under ambient
#: plans with the same three seeds.
SEEDS = (7, 19, 23)

#: One entry per failure class that must converge to retry-success (or
#: rebuild/fallback) with bit-identical results: (label, plan fields,
#: jobs, supervision event that must appear).
CONVERGING_CLASSES = [
    ("worker-crash-pool", "worker_crash=1.0", 2, "retry"),
    ("worker-crash-serial", "worker_crash=1.0", None, "retry"),
    ("pool-break-rebuild", "pool_break=1.0", 2, "pool-rebuild"),
    # The watchdog must sit well above the honest unit time (a cold
    # "towers" evaluation is ~0.7s in-process) and well below the
    # stall, or a slow-but-healthy retry gets reaped into quarantine.
    (
        "stall-watchdog",
        "worker_stall=1.0,stall_seconds=8,timeout=2.5",
        2,
        "timeout",
    ),
    (
        "store-chaos",
        "torn_write=1.0,bitflip=1.0,store_oserror=0.5,load_oserror=0.5",
        None,
        None,
    ),
]


def canonical(results):
    out = []
    for batch in results:
        if batch is None:
            out.append(None)
            continue
        out.append([
            {
                "name": r.name,
                "unified": r.unified_stats.as_dict(),
                "conventional": r.conventional_stats.as_dict(),
                "dynamic": dict(r.dynamic),
                "output": tuple(r.output),
                "steps": r.steps,
            }
            for r in batch
        ])
    return out


def fast_supervisor(**overrides):
    options = dict(backoff_base=0.01, backoff_cap=0.05, tick=0.02)
    options.update(overrides)
    return Supervisor(**options)


@pytest.fixture(scope="module")
def baseline():
    with faultinject.fault_plan(None):
        return canonical(run_units(list(UNITS)))


@pytest.fixture(scope="module")
def figure5_clean():
    with faultinject.fault_plan(None):
        return format_figure5(figure5_table())


class TestEveryClassConverges:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "label,fields,jobs,event",
        CONVERGING_CLASSES,
        ids=[entry[0] for entry in CONVERGING_CLASSES],
    )
    def test_class_ends_in_sanctioned_outcome(self, tmp_path, baseline,
                                              seed, label, fields, jobs,
                                              event):
        plan = "seed={},{}".format(seed, fields)
        sup = fast_supervisor()
        failures = []
        cache = ArtifactCache(str(tmp_path / "store"))
        with faultinject.fault_plan(plan):
            first = run_units(
                list(UNITS), jobs=jobs, supervisor=sup,
                failures=failures, artifact_cache=cache,
            )
            # A second pass over the same store exercises the *load*
            # side of the schedule (bitflips, EIO, torn entries left
            # by the first pass).
            second = run_units(
                list(UNITS), jobs=jobs, supervisor=sup,
                failures=failures, artifact_cache=cache,
            )
        # Sanctioned outcomes only: everything converged, nothing was
        # recorded as failed, and the results are bit-identical.
        assert failures == []
        assert canonical(first) == baseline, label
        assert canonical(second) == baseline, label
        if event is not None:
            assert sup.count(event) >= 1, (label, sup.events)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_poison_ends_in_quarantine_with_recorded_reason(
            self, tmp_path, seed):
        plan = "seed={},poison_unit=1.0".format(seed)
        sup = fast_supervisor()
        failures = []
        with faultinject.fault_plan(plan):
            results = run_units(
                list(UNITS), jobs=2, supervisor=sup, failures=failures,
                artifact_cache=ArtifactCache(str(tmp_path / "store")),
            )
        assert results == [None, None]
        assert sup.count("quarantine") == len(UNITS)
        for unit, record in zip(UNITS, failures):
            assert record["item"] == unit.name
            assert record["error_type"] == "WorkerQuarantined"
            assert record["stage"] == "quarantine"
            # The recorded reason names the underlying injected fault.
            assert "FaultInjected" in record["message"]

    def test_store_chaos_schedule_fires_its_classes(self, tmp_path,
                                                    baseline):
        # Serial, in-process: the plan's fired counters are visible, so
        # the sweep can prove the schedule exercised what it promised.
        plan = "seed=7,torn_write=1.0,bitflip=1.0"
        cache = ArtifactCache(str(tmp_path / "store"))
        with faultinject.fault_plan(plan) as active:
            # Pass 1 stores torn entries; pass 2 quarantines them and
            # re-stores clean copies (the torn budget is spent); pass 3
            # reads those clean entries, which is where the bitflip
            # gets its opportunity.
            first = run_units(list(UNITS), artifact_cache=cache)
            second = run_units(list(UNITS), artifact_cache=cache)
            third = run_units(list(UNITS), artifact_cache=cache)
        assert canonical(first) == baseline
        assert canonical(second) == baseline
        assert canonical(third) == baseline
        assert active.fired.get("torn_write", 0) >= 1
        assert active.fired.get("bitflip", 0) >= 1
        # The torn/flipped entries were quarantined with evidence, not
        # silently re-served.  (run_units workers open their own cache
        # instance on the shared root, so the proof is the on-disk
        # quarantine, not this instance's session counter.)
        assert len(cache.quarantine_entries()) >= 1


class TestGoldenFigure5:
    def test_bit_identical_under_chaos_schedule(self, tmp_path,
                                                figure5_clean):
        plan = ("seed=11,worker_crash=0.6,torn_write=0.7,bitflip=0.7,"
                "load_oserror=0.5,store_oserror=0.4")
        cache = ArtifactCache(str(tmp_path / "store"))
        with faultinject.fault_plan(plan):
            chaotic = format_figure5(
                figure5_table(jobs=2, artifact_cache=cache)
            )
            warm = format_figure5(
                figure5_table(jobs=2, artifact_cache=cache)
            )
        assert chaotic == figure5_clean
        assert warm == figure5_clean

    def test_kill_and_resume_bit_identical(self, tmp_path, figure5_clean):
        journal_path = str(tmp_path / "journal.bin")
        cache = ArtifactCache(str(tmp_path / "store"))
        with faultinject.fault_plan("seed=13,interrupt_after=2"):
            with pytest.raises(KeyboardInterrupt):
                figure5_table(
                    jobs=2, artifact_cache=cache, journal=journal_path
                )
        completed = Journal(journal_path)
        assert len(completed.entries) >= 2  # partial progress persisted
        # Resume under renewed worker chaos: journal hits replay the
        # completed units, the rest converge through retries.
        with faultinject.fault_plan("seed=13,worker_crash=0.6"):
            resumed = format_figure5(
                figure5_table(
                    jobs=2, artifact_cache=cache, journal=journal_path
                )
            )
        assert resumed == figure5_clean
