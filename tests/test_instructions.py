"""Unit tests for IR operand/instruction mechanics and machine config."""

import pytest

from repro.ir.instructions import (
    MACHINE,
    AddrOfSym,
    BinOp,
    Call,
    CJump,
    Imm,
    Jump,
    Load,
    MachineConfig,
    Move,
    PReg,
    Print,
    RefInfo,
    RegionKind,
    RegMem,
    Ret,
    Store,
    SymMem,
    UnOp,
    VReg,
    is_reg,
)


class TestOperands:
    def test_preg_interned(self):
        assert PReg(3) is PReg(3)
        assert PReg(3) is not PReg(4)

    def test_vreg_identity(self):
        a = VReg("x")
        b = VReg("x")
        assert a is not b
        assert a != b
        assert a == a

    def test_vreg_ids_monotonic(self):
        a = VReg()
        b = VReg()
        assert b.id > a.id

    def test_imm_equality(self):
        assert Imm(5) == Imm(5)
        assert Imm(5) != Imm(6)

    def test_is_reg(self):
        assert is_reg(VReg())
        assert is_reg(PReg(0))
        assert not is_reg(Imm(1))
        assert not is_reg(None)

    def test_reprs(self):
        assert repr(PReg(7)) == "r7"
        assert repr(Imm(3)) == "#3"
        assert "x" in repr(VReg("x"))


class TestUsesDefs:
    def test_move(self):
        a, b = VReg("a"), VReg("b")
        inst = Move(a, b)
        assert inst.uses() == [b]
        assert inst.defs() == [a]
        assert Move(a, Imm(1)).uses() == []

    def test_binop(self):
        a, b, c = VReg(), VReg(), VReg()
        inst = BinOp(a, "add", b, c)
        assert set(inst.uses()) == {b, c}
        assert inst.defs() == [a]
        assert BinOp(a, "add", Imm(1), c).uses() == [c]

    def test_binop_rejects_unknown_op(self):
        with pytest.raises(AssertionError):
            BinOp(VReg(), "xor", Imm(1), Imm(2))

    def test_load_store_regmem(self):
        addr, dest, src = VReg("addr"), VReg("d"), VReg("s")
        ref = RefInfo("t", RegionKind.UNKNOWN)
        load = Load(dest, RegMem(addr), ref)
        assert load.uses() == [addr]
        assert load.defs() == [dest]
        store = Store(RegMem(addr), src, ref)
        assert set(store.uses()) == {src, addr}
        assert store.defs() == []

    def test_load_store_symmem(self):
        class FakeSymbol:
            def storage_name(self):
                return "fake"

        ref = RefInfo("t", RegionKind.DIRECT)
        dest = VReg()
        load = Load(dest, SymMem(FakeSymbol()), ref)
        assert load.uses() == []

    def test_call_clobbers_caller_saved(self):
        call = Call("f", 2, True)
        assert set(call.uses()) == {PReg(0), PReg(1)}
        assert set(call.defs()) == {
            PReg(i) for i in MACHINE.caller_saved()
        }

    def test_ret_uses_r0_only_with_value(self):
        assert Ret(True).uses() == [PReg(MACHINE.ret_reg)]
        assert Ret(False).uses() == []

    def test_terminator_flags(self):
        assert Jump("x").is_terminator
        assert CJump(Imm(1), "a", "b").is_terminator
        assert Ret(False).is_terminator
        assert not Move(VReg(), Imm(0)).is_terminator

    def test_successors(self):
        assert Jump("x").successors_names() == ["x"]
        assert CJump(Imm(1), "a", "b").successors_names() == ["a", "b"]
        assert Ret(False).successors_names() == []


class TestRewrite:
    def test_rewrite_all_positions(self):
        a, b, c = VReg("a"), VReg("b"), VReg("c")
        new = {a: VReg("a2"), b: VReg("b2")}
        inst = BinOp(a, "add", b, c)
        inst.rewrite_registers(lambda reg: new.get(reg, reg))
        assert inst.dest is new[a]
        assert inst.left is new[b]
        assert inst.right is c

    def test_rewrite_regmem(self):
        addr = VReg("addr")
        new_addr = VReg("addr2")
        ref = RefInfo("t", RegionKind.UNKNOWN)
        inst = Load(VReg(), RegMem(addr), ref)
        inst.rewrite_registers(
            lambda reg: new_addr if reg is addr else reg
        )
        assert inst.mem.addr is new_addr

    def test_rewrite_cjump_cond(self):
        cond = VReg()
        new_cond = VReg()
        inst = CJump(cond, "a", "b")
        inst.rewrite_registers(lambda reg: new_cond)
        assert inst.cond is new_cond

    def test_rewrite_print(self):
        src = VReg()
        inst = Print(src)
        replacement = VReg()
        inst.rewrite_registers(lambda reg: replacement)
        assert inst.src is replacement


class TestRefInfo:
    def test_annotate(self):
        from repro.ir.instructions import RefFlavor

        ref = RefInfo("x", RegionKind.DIRECT)
        ref.annotate(RefFlavor.UMAM_LOAD, bypass=True, kill=True)
        assert ref.flavor is RefFlavor.UMAM_LOAD
        assert ref.bypass and ref.kill

    def test_describe(self):
        from repro.ir.instructions import RefClass, RefFlavor

        ref = RefInfo("x", RegionKind.DIRECT)
        ref.ref_class = RefClass.UNAMBIGUOUS
        ref.annotate(RefFlavor.UMAM_STORE, bypass=True)
        text = ref.describe()
        assert "x" in text and "bypass" in text


class TestMachineConfig:
    def test_default_partition(self):
        machine = MachineConfig()
        assert len(machine.all_regs()) == 16
        assert set(machine.caller_saved()) | set(machine.callee_saved()) \
            == set(machine.all_regs())
        assert not set(machine.caller_saved()) & set(machine.callee_saved())

    def test_arg_regs_are_caller_saved(self):
        machine = MachineConfig()
        assert set(machine.arg_regs()) <= set(machine.caller_saved())

    def test_custom_machine(self):
        machine = MachineConfig(num_regs=8, num_caller_saved=4)
        assert machine.callee_saved() == (4, 5, 6, 7)


class TestAddrOfSym:
    def test_defs(self):
        class FakeSymbol:
            def storage_name(self):
                return "arr"

        dest = VReg()
        inst = AddrOfSym(dest, FakeSymbol())
        assert inst.defs() == [dest]
        assert inst.uses() == []

    def test_unop_ops(self):
        with pytest.raises(AssertionError):
            UnOp(VReg(), "abs", Imm(1))
