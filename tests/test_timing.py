"""Tests for the analytic access-time model."""

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.cache.stats import CacheStats
from repro.cache.timing import (
    LatencyModel,
    access_time_speedup,
    value_reference_time,
)


class TestLatencyModel:
    def test_empty_stats_zero_cycles(self):
        assert LatencyModel().cycles(CacheStats()) == 0

    def test_pure_hits(self):
        stats = CacheStats(refs_total=10, refs_cached=10, hits=10)
        assert LatencyModel().cycles(stats) == 10

    def test_miss_with_fill(self):
        stats = CacheStats(
            refs_total=1, refs_cached=1, misses=1, words_from_memory=1
        )
        model = LatencyModel()
        assert model.cycles(stats) == model.miss_detect_cycles + \
            model.memory_cycles

    def test_write_allocate_miss_without_fill(self):
        stats = CacheStats(refs_total=1, refs_cached=1, misses=1)
        assert LatencyModel().cycles(stats) == 1  # tag check only

    def test_bypass_read_from_memory(self):
        stats = CacheStats(
            refs_total=1, refs_bypassed=1, words_from_memory=1,
            bypass_reads_from_memory=1,
        )
        assert LatencyModel().cycles(stats) == 10

    def test_bypass_probe_hit_is_cache_speed(self):
        stats = CacheStats(
            refs_total=1, refs_bypassed=1, probe_hits=1, bypass_read_hits=1
        )
        assert LatencyModel().cycles(stats) == 1

    def test_bypass_write(self):
        stats = CacheStats(
            refs_total=1, refs_bypassed=1, words_to_memory=1,
            bypass_writes=1,
        )
        assert LatencyModel().cycles(stats) == 10

    def test_writebacks_off_critical_path(self):
        with_wb = CacheStats(
            refs_total=2, refs_cached=2, hits=2, writebacks=1,
            words_to_memory=1,
        )
        without = CacheStats(refs_total=2, refs_cached=2, hits=2)
        model = LatencyModel()
        assert model.cycles(with_wb) == model.cycles(without)

    def test_average_access_time(self):
        stats = CacheStats(refs_total=4, refs_cached=4, hits=4)
        assert LatencyModel().average_access_time(stats) == 1.0
        assert LatencyModel().average_access_time(CacheStats()) == 0.0

    def test_custom_latencies(self):
        model = LatencyModel(cache_hit_cycles=2, memory_cycles=50)
        stats = CacheStats(refs_total=1, refs_cached=1, hits=1)
        assert model.cycles(stats) == 2


class TestDerivedFromSimulation:
    def test_bypass_breakdown_sums(self):
        cache = Cache(CacheConfig(size_words=8, associativity=4))
        import random

        rng = random.Random(5)
        for _ in range(300):
            cache.access(
                rng.randrange(16),
                rng.random() < 0.5,
                bypass=rng.random() < 0.4,
                kill=rng.random() < 0.1,
            )
        stats = cache.stats
        assert (
            stats.bypass_read_hits
            + stats.bypass_reads_from_memory
            + stats.bypass_writes
            == stats.refs_bypassed
        )

    def test_cycles_nonnegative_on_random_streams(self):
        cache = Cache(CacheConfig(size_words=8, associativity=2))
        import random

        rng = random.Random(9)
        for _ in range(500):
            cache.access(
                rng.randrange(32),
                rng.random() < 0.5,
                bypass=rng.random() < 0.3,
                kill=rng.random() < 0.2,
            )
        assert LatencyModel().cycles(cache.stats) >= 0


class TestHelpers:
    def test_value_reference_time_adds_register_refs(self):
        stats = CacheStats(refs_total=1, refs_cached=1, hits=1)
        assert value_reference_time(stats, refs_in_registers=100) == 1
        assert value_reference_time(
            stats, refs_in_registers=100, register_cycles=1
        ) == 101

    def test_speedup_ratio(self):
        assert access_time_speedup(100, 50) == pytest.approx(2.0)
        assert access_time_speedup(100, 0) == float("inf")
