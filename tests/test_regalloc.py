"""Register allocation tests: promotion, coloring, spilling, saves.

The strongest checks here are semantic: the same program must produce
identical output at every promotion level and under punishing register
pressure, because spill code and callee saves are the mechanisms the
unified model routes through the cache.
"""

import pytest

from conftest import outputs, run_source

from repro.analysis.alias import analyze_aliases
from repro.ir.builder import build_module
from repro.ir.cfg import build_cfg
from repro.ir.instructions import Load, MachineConfig, PReg, RefOrigin, Store
from repro.lang.parser import parse_program
from repro.lang.sema import analyze
from repro.regalloc.allocator import allocate_function, allocate_module
from repro.regalloc.interference import build_interference
from repro.regalloc.promotion import choose_promotable, promote_scalars
from repro.unified.pipeline import CompilationOptions, compile_source

PRESSURE_SOURCE = """
int main() {
    int a; int b; int c; int d; int e; int f; int g; int h;
    int i; int j; int k; int l; int m; int n; int o; int p;
    int q; int r; int s; int t;
    a = 1; b = 2; c = 3; d = 4; e = 5; f = 6; g = 7; h = 8;
    i = 9; j = 10; k = 11; l = 12; m = 13; n = 14; o = 15; p = 16;
    q = 17; r = 18; s = 19; t = 20;
    // Use everything at once so all twenty values are live together.
    print(a + b + c + d + e + f + g + h + i + j
          + k + l + m + n + o + p + q + r + s + t);
    print(a * t + b * s + c * r + d * q + e * p + f * o
          + g * n + h * m + i * l + j * k);
    return 0;
}
"""


def allocated_module(source, promotion="modest", machine=None, budget=6):
    machine = machine or MachineConfig()
    module = build_module(analyze(parse_program(source)), machine)
    for function in module.functions.values():
        build_cfg(function)
    alias = analyze_aliases(module)
    stats = allocate_module(module, alias, machine, promotion, budget)
    return module, stats


class TestPromotion:
    def test_none_promotes_nothing(self):
        module, stats = allocated_module(
            "int main() { int x; x = 1; return x; }", promotion="none"
        )
        assert stats["main"].promoted_symbols == []

    def test_aggressive_promotes_all_worthy(self):
        module, stats = allocated_module(
            "int main() { int x; int y; int *p; p = &y; *p = 2; x = 1; "
            "return x + y; }",
            promotion="aggressive",
        )
        promoted = stats["main"].promoted_symbols
        assert any(name.startswith("x#") for name in promoted)
        # y's address escapes: it must stay in memory.
        assert not any(name.startswith("y#") for name in promoted)

    def test_modest_budget_limits_promotion(self):
        source = (
            "int main() { int a; int b; int c; a = 1; b = 2; c = 3; "
            "return a + b + c; }"
        )
        _module, stats = allocated_module(source, "modest", budget=1)
        assert len(stats["main"].promoted_symbols) == 1

    def test_modest_prefers_loop_variables(self):
        source = (
            "int main() { int cold; int hot; int s; cold = 1; s = 0;"
            "for (hot = 0; hot < 100; hot++) s = s + hot;"
            "return s + cold; }"
        )
        module = build_module(analyze(parse_program(source)))
        function = module.functions["main"]
        build_cfg(function)
        alias = analyze_aliases(module)
        chosen = choose_promotable(function, alias, "modest", budget=2)
        names = {symbol.name for symbol in chosen}
        assert "hot" in names
        assert "s" in names

    def test_promotion_removes_memory_refs(self):
        source = "int main() { int x; x = 5; return x + x; }"
        module = build_module(analyze(parse_program(source)))
        function = module.functions["main"]
        build_cfg(function)
        alias = analyze_aliases(module)
        before = sum(
            isinstance(i, (Load, Store)) for i in function.instructions()
        )
        promote_scalars(
            function, choose_promotable(function, alias, "aggressive")
        )
        after = sum(
            isinstance(i, (Load, Store)) for i in function.instructions()
        )
        assert after < before


class TestColoring:
    def test_no_interfering_same_color(self):
        source = PRESSURE_SOURCE
        module = build_module(analyze(parse_program(source)))
        function = module.functions["main"]
        build_cfg(function)
        alias = analyze_aliases(module)
        promote_scalars(
            function, choose_promotable(function, alias, "aggressive")
        )
        build_cfg(function)
        from repro.analysis.du import rename_webs
        from repro.regalloc.chaitin import color_graph

        rename_webs(function)
        graph = build_interference(function)
        result = color_graph(graph, MachineConfig())
        for node, color in result.assignment.items():
            for neighbor in graph.neighbors(node):
                if isinstance(neighbor, PReg):
                    assert neighbor.index != color
                elif neighbor in result.assignment:
                    assert result.assignment[neighbor] != color

    def test_pressure_forces_spills(self):
        _module, stats = allocated_module(
            PRESSURE_SOURCE, promotion="aggressive"
        )
        assert stats["main"].spilled_webs > 0

    def test_pressure_program_still_correct(self):
        result = run_source(PRESSURE_SOURCE, promotion="aggressive")
        expected_sum = sum(range(1, 21))
        expected_dot = sum(
            a * b for a, b in zip(range(1, 11), range(20, 10, -1))
        )
        assert result.output == [expected_sum, expected_dot]

    def test_tiny_machine_still_works(self):
        # Eight registers total (4 caller-saved): brutal but allocatable.
        machine = MachineConfig(num_regs=8, num_arg_regs=4,
                                num_caller_saved=4)
        options = CompilationOptions(promotion="aggressive", machine=machine)
        program = compile_source(PRESSURE_SOURCE, options)
        result = program.run()
        assert result.output[0] == sum(range(1, 21))

    def test_spill_code_references_spill_slots(self):
        module, stats = allocated_module(
            PRESSURE_SOURCE, promotion="aggressive"
        )
        spill_refs = [
            inst.ref
            for inst in module.functions["main"].instructions()
            if isinstance(inst, (Load, Store))
            and inst.ref.origin is RefOrigin.SPILL
        ]
        assert spill_refs


class TestCalleeSaves:
    def test_recursive_function_saves_callee_registers(self):
        source = (
            "int fib(int n) { if (n < 2) return n; "
            "return fib(n - 1) + fib(n - 2); } "
            "int main() { return fib(10); }"
        )
        module, stats = allocated_module(source, promotion="aggressive")
        assert stats["fib"].callee_saved_used
        saves = [
            inst
            for inst in module.functions["fib"].instructions()
            if isinstance(inst, (Load, Store))
            and inst.ref.origin is RefOrigin.CALLEE_SAVE
        ]
        assert saves

    def test_leaf_function_avoids_callee_saves(self):
        source = (
            "int add(int a, int b) { return a + b; } "
            "int main() { return add(1, 2); }"
        )
        _module, stats = allocated_module(source, promotion="aggressive")
        assert stats["add"].callee_saved_used == []

    def test_value_survives_call(self):
        source = (
            "int id(int x) { return x; } "
            "int main() { int a; a = 11; print(id(5)); print(a); return 0; }"
        )
        assert outputs(source, promotion="aggressive") == [5, 11]


class TestSemanticPreservation:
    @pytest.mark.parametrize("promotion", ["none", "modest", "aggressive"])
    def test_same_output_across_promotion_levels(self, promotion):
        source = """
        int g;
        int a[6];
        int sum3(int x, int y, int z) { return x + y + z; }
        int main() {
            int i;
            for (i = 0; i < 6; i++) a[i] = i * i - 3;
            g = 0;
            for (i = 0; i < 6; i++) g = g + a[i];
            print(g);
            print(sum3(a[0], a[3], g));
            return 0;
        }
        """
        # sum(i*i - 3 for i in 0..5) = 55 - 18 = 37; -3 + 6 + 37 = 40.
        assert outputs(source, promotion=promotion) == [37, 40]

    def test_allocated_code_has_no_vregs(self):
        from repro.ir.instructions import VReg

        module, _stats = allocated_module(PRESSURE_SOURCE, "aggressive")
        for function in module.functions.values():
            for instruction in function.instructions():
                for register in list(instruction.uses()) + list(
                    instruction.defs()
                ):
                    assert not isinstance(register, VReg)

    def test_deterministic_allocation(self):
        results = set()
        for _ in range(3):
            program = compile_source(
                PRESSURE_SOURCE, CompilationOptions(promotion="aggressive")
            )
            results.add(program.run().steps)
        assert len(results) == 1
