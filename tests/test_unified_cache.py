"""Combined I+D cache experiment and instruction-fetch tracing tests."""

import pytest

from conftest import compile_program

from repro.evalharness.unifiedcache import (
    SplitStats,
    record_combined_trace,
    replay_combined,
    unified_cache_comparison,
)
from repro.cache.cache import CacheConfig
from repro.vm.machine import TEXT_BASE
from repro.vm.trace import FLAG_INSTRUCTION

SOURCE = (
    "int f(int x) { return x * 2; } "
    "int main() { int i; int s; s = 0; "
    "for (i = 0; i < 10; i++) s = s + f(i); print(s); return 0; }"
)


class TestInstructionTracing:
    def test_sink_sees_every_step(self):
        program = compile_program(SOURCE)
        fetched = []
        vm = program.machine(instruction_sink=fetched.append)
        result = vm.run()
        assert len(fetched) == result.steps

    def test_addresses_in_text_segment(self):
        program = compile_program(SOURCE)
        fetched = []
        vm = program.machine(instruction_sink=fetched.append)
        vm.run()
        assert all(address >= TEXT_BASE for address in fetched)
        assert max(fetched) < TEXT_BASE + vm.code_size

    def test_straightline_fetches_are_sequential(self):
        program = compile_program("int main() { int x; x = 1; x = x + 2; "
                                  "return x; }", promotion="aggressive")
        fetched = []
        vm = program.machine(instruction_sink=fetched.append)
        vm.run()
        deltas = [b - a for a, b in zip(fetched, fetched[1:])]
        # A single basic block: every fetch advances by one word.
        assert all(delta == 1 for delta in deltas)

    def test_layout_is_disjoint_across_functions(self):
        program = compile_program(SOURCE)
        vm = program.machine()
        spans = []
        for function in program.module.functions.values():
            for block in function.blocks.values():
                spans.append(
                    (block.code_address,
                     block.code_address + len(block.instructions))
                )
        spans.sort()
        for (start_a, end_a), (start_b, _end_b) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_no_sink_no_overhead_path(self):
        program = compile_program(SOURCE)
        result = program.run()
        assert result.output == [90]


class TestCombinedTrace:
    def test_trace_contains_both_classes(self):
        trace, _program = record_combined_trace("queen")
        summary = trace.summary()
        assert summary["instructions"] > 0
        assert summary["total"] > 0
        assert summary["instructions"] + summary["total"] == len(trace)

    def test_instruction_events_flagged(self):
        trace, _program = record_combined_trace("queen")
        flagged = sum(
            1 for _addr, flags in trace if flags & FLAG_INSTRUCTION
        )
        assert flagged == trace.summary()["instructions"]

    def test_replay_split_counts(self):
        trace, _program = record_combined_trace("queen")
        split, stats = replay_combined(
            trace, CacheConfig(size_words=256, associativity=4)
        )
        summary = trace.summary()
        assert split.i_refs == summary["instructions"]
        assert split.d_refs == summary["total"]
        assert split.d_bypassed == summary["bypassed"]
        assert stats.refs_total == len(trace)

    def test_split_stats_rates(self):
        split = SplitStats(i_refs=10, i_hits=9, d_refs=6, d_hits=2,
                           d_bypassed=2)
        assert split.i_hit_rate == pytest.approx(0.9)
        assert split.d_hit_rate == pytest.approx(0.5)

    def test_empty_rates(self):
        split = SplitStats()
        assert split.i_hit_rate == 0.0
        assert split.d_hit_rate == 0.0


class TestComparison:
    def test_bypass_never_hurts_instruction_stream(self):
        for size in (128, 256):
            row = unified_cache_comparison("queen", size_words=size)
            assert row["unified_i_hit_rate"] >= (
                row["conventional_i_hit_rate"] - 1e-9
            )

    def test_pressure_shows_gain(self):
        row = unified_cache_comparison("towers", size_words=128)
        assert row["unified_i_hit_rate"] > row["conventional_i_hit_rate"]

    def test_row_fields(self):
        row = unified_cache_comparison("queen", size_words=128)
        assert row["i_refs"] > row["d_refs"] > 0
