"""The fuzzing subsystem: generator, differential checker, reducer,
driver, and the error-classification plumbing they share."""

import json
import os

import pytest

from repro.errors import (
    InternalError,
    ReproError,
    error_signature,
    pipeline_stage,
)
from repro.robustness import check_source, generate_program, reduce_source
from repro.robustness.differential import DifferentialError
from repro.robustness.driver import run_fuzz
from repro.unified.pipeline import compile_source

#: Seeds exercised by the quick in-suite differential pass; the CI
#: smoke run covers hundreds more via ``repro-fuzz``.
QUICK_SEEDS = range(12)


class TestGenerator:
    def test_deterministic(self):
        first = generate_program(42)
        second = generate_program(42)
        assert first.source == second.source
        assert first.expected_output == second.expected_output
        assert first.expected_return == second.expected_return

    def test_distinct_seeds_differ(self):
        sources = {generate_program(seed).source for seed in range(8)}
        assert len(sources) > 1

    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_programs_compile_and_match_model(self, seed):
        generated = generate_program(seed)
        program = compile_source(generated.source)
        result = program.run(max_steps=5_000_000)
        assert result.output == list(generated.expected_output)
        assert result.return_value == generated.expected_return

    def test_programs_exercise_alias_machinery(self):
        # Across a handful of seeds the generator must produce the
        # constructs the alias analysis exists for.
        corpus = "\n".join(
            generate_program(seed).source for seed in range(20)
        )
        assert "&" in corpus
        assert "*p" in corpus
        assert "[" in corpus
        assert "while" in corpus
        assert "for" in corpus


class TestDifferential:
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_battery_passes(self, seed):
        generated = generate_program(seed)
        info = check_source(
            generated.source,
            expected_output=generated.expected_output,
            expected_return=generated.expected_return,
        )
        assert info["configs"] == 8

    def test_wrong_model_prediction_is_flagged(self):
        generated = generate_program(0)
        with pytest.raises(DifferentialError) as excinfo:
            check_source(generated.source, expected_return=10**9)
        assert excinfo.value.kind == "model-return"
        assert excinfo.value.stage == "differential"


class TestReducer:
    def test_shrinks_to_the_failing_line(self):
        generated = generate_program(7)
        needle = "print("

        def predicate(candidate):
            if needle not in candidate:
                return False
            try:
                compile_source(candidate)
            except ReproError:
                return False
            return True

        reduced = reduce_source(generated.source, predicate)
        assert needle in reduced
        assert len(reduced.splitlines()) <= 15
        compile_source(reduced)  # still a valid program

    def test_unreproducible_failure_is_returned_unchanged(self):
        source = "int main() { return 1; }\n"
        assert reduce_source(source, lambda candidate: False) == source


class TestDriver:
    def test_clean_run_reports_no_failures(self, tmp_path):
        failures = run_fuzz(
            programs=5, seed=0, crashes_dir=str(tmp_path / "crashes")
        )
        assert failures == []
        assert not (tmp_path / "crashes").exists()

    def test_injected_failure_is_shrunk_and_archived(self, tmp_path):
        crashes = tmp_path / "crashes"
        failures = run_fuzz(
            programs=6,
            seed=0,
            crashes_dir=str(crashes),
            inject=r"print\(",
        )
        assert failures, "every generated program prints, so all fail"
        for record in failures:
            assert record["error_type"] == "InjectedFailure"
            assert record["stage"] == "injected"
            assert record["reduced_lines"] <= 15
            crash_dir = record["crash_dir"]
            assert os.path.isfile(os.path.join(crash_dir, "original.mc"))
            assert os.path.isfile(os.path.join(crash_dir, "reduced.mc"))
            with open(os.path.join(crash_dir, "meta.json")) as handle:
                meta = json.load(handle)
            assert meta["seed"] == record["seed"]
            assert "traceback" in meta
            # The reduced reproducer still compiles and still matches.
            with open(os.path.join(crash_dir, "reduced.mc")) as handle:
                reduced = handle.read()
            assert "print(" in reduced
            compile_source(reduced)


class TestErrorPlumbing:
    def test_pipeline_stage_wraps_raw_exceptions(self):
        with pytest.raises(InternalError) as excinfo:
            with pipeline_stage("demo"):
                raise KeyError("boom")
        error = excinfo.value
        assert error.stage == "demo"
        assert error.original_type == "KeyError"
        assert isinstance(error.__cause__, KeyError)

    def test_pipeline_stage_passes_repro_errors_through(self):
        class Custom(ReproError):
            pass

        with pytest.raises(Custom) as excinfo:
            with pipeline_stage("demo"):
                raise Custom("typed")
        assert excinfo.value.stage == "demo"  # tagged in flight

    def test_error_signature_distinguishes_kinds(self):
        left = DifferentialError("output-mismatch", "a")
        right = DifferentialError("step-mismatch", "b")
        assert error_signature(left) != error_signature(right)
        assert error_signature(left) == error_signature(
            DifferentialError("output-mismatch", "different message")
        )
