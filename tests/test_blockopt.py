"""Tests for block-local register caching of unambiguous globals."""

import pytest

from conftest import ALL_CONFIGS, compile_program, run_source

from repro.ir.instructions import Load, Store, SymMem

GLOBAL_HEAVY = """
int counter;
int limit;

void bump() { counter = counter + 2; }

int main() {
    int i;
    counter = 0;
    limit = 10;
    for (i = 0; i < limit; i++) {
        counter = counter + 1;
        counter = counter + 1;
        counter = counter + 1;
    }
    bump();
    print(counter);
    print(limit);
    return 0;
}
"""


def global_ref_count(program, symbol_name):
    count = 0
    for function in program.module.functions.values():
        for instruction in function.instructions():
            if isinstance(instruction, (Load, Store)) and isinstance(
                instruction.mem, SymMem
            ):
                if instruction.mem.symbol.name == symbol_name:
                    count += 1
    return count


class TestCorrectness:
    @pytest.mark.parametrize("scheme,promotion", ALL_CONFIGS)
    def test_semantics_preserved(self, scheme, promotion):
        result = run_source(
            GLOBAL_HEAVY, scheme=scheme, promotion=promotion,
            cache_globals_in_blocks=True,
        )
        assert result.output == [32, 10]

    def test_matches_unoptimised_output(self):
        plain = run_source(GLOBAL_HEAVY)
        optimised = run_source(GLOBAL_HEAVY, cache_globals_in_blocks=True)
        assert plain.output == optimised.output

    def test_callee_sees_flushed_value(self):
        source = """
        int g;
        int observe() { return g; }
        int main() {
            g = 5;
            g = g + 1;
            print(observe());   // must see 6, not a stale 5
            g = g * 10;
            print(observe());
            return 0;
        }
        """
        result = run_source(source, cache_globals_in_blocks=True,
                            promotion="aggressive")
        assert result.output == [6, 60]

    def test_value_reloaded_after_call(self):
        source = """
        int g;
        void mutate() { g = 99; }
        int main() {
            g = 1;
            print(g);
            mutate();
            print(g);          // must reload: callee changed it
            return 0;
        }
        """
        result = run_source(source, cache_globals_in_blocks=True,
                            promotion="aggressive")
        assert result.output == [1, 99]

    def test_address_taken_global_untouched(self):
        source = """
        int g;
        int main() {
            int *p;
            p = &g;
            g = 1;
            *p = 7;
            print(g);
            return 0;
        }
        """
        result = run_source(source, cache_globals_in_blocks=True)
        assert result.output == [7]

    def test_benchmarks_still_correct(self):
        from repro.programs import get_benchmark

        for name in ("towers", "queen", "sieve"):
            bench = get_benchmark(name)
            program = compile_program(
                bench.source, promotion="aggressive",
                cache_globals_in_blocks=True,
            )
            assert tuple(program.run().output) == bench.expected_output


class TestEffectiveness:
    def test_redundant_refs_removed(self):
        plain = compile_program(GLOBAL_HEAVY, promotion="aggressive")
        optimised = compile_program(
            GLOBAL_HEAVY, promotion="aggressive",
            cache_globals_in_blocks=True,
        )
        assert global_ref_count(optimised, "counter") < (
            global_ref_count(plain, "counter")
        )

    def test_dynamic_traffic_reduced(self):
        from repro.vm.memory import RecordingMemory

        plain = compile_program(GLOBAL_HEAVY, promotion="aggressive")
        optimised = compile_program(
            GLOBAL_HEAVY, promotion="aggressive",
            cache_globals_in_blocks=True,
        )
        plain_memory = RecordingMemory()
        plain.run(memory=plain_memory)
        optimised_memory = RecordingMemory()
        optimised.run(memory=optimised_memory)
        assert len(optimised_memory.buffer) < len(plain_memory.buffer)

    def test_towers_access_time_recovers(self):
        """The E13 gap: with intraprocedural global caching, towers'
        unified access time improves substantially."""
        from repro.cache.cache import CacheConfig
        from repro.cache.replay import replay_trace
        from repro.cache.timing import LatencyModel
        from repro.programs import get_benchmark
        from repro.vm.memory import RecordingMemory

        bench = get_benchmark("towers")
        model = LatencyModel()
        cycles = {}
        for flag in (False, True):
            program = compile_program(
                bench.source, promotion="aggressive",
                cache_globals_in_blocks=flag,
            )
            memory = RecordingMemory()
            result = program.run(memory=memory)
            assert tuple(result.output) == bench.expected_output
            stats = replay_trace(memory.buffer, CacheConfig())
            cycles[flag] = model.cycles(stats)
        assert cycles[True] < cycles[False]
