"""Conformance suite for the :class:`ReplacementPolicy` protocol.

The refactor's contract is that every policy — LRU, FIFO, Random,
MIN, and the predictive zoo (SRRIP, BRRIP, DRRIP, SHiP, Hawkeye) — is
a state-owning strategy object behind one transfer function
(:class:`repro.cache.semantics.UnifiedCache`), and that every engine
driving that core produces bit-identical :class:`CacheStats`.  This
suite checks the contract from four angles:

* the protocol surface itself (``make_policy`` dispatch, the
  operations every policy must expose, capacity invariants,
  fixed-seed determinism);
* cross-engine bit-identity per policy on hand-built and fuzzer
  traces (serial replay vs multi-replay vs the sweep dispatcher —
  Random included, via the counter-based per-(set, draw) RNG);
* the kill/bypass interaction semantics each policy must honor
  (demote forces predicted-dead, invalidation never trains a
  predictor);
* the golden Figure 5 pin: the numbers in ``tests/golden/figure5.json``
  reproduced through all four engines — online :class:`Cache`, the
  data-carrying functional twin, the multi-replay core, and the
  stack-distance sweep.
"""

import json
import os

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.cache.functional import DataCachedMemory
from repro.cache.replay import (
    MinConfig,
    policy_for_trace,
    replay_trace,
    replay_trace_multi,
)
from repro.cache.semantics import (
    ENTRY_DEAD,
    RRPV_MAX,
    SHCT_INIT,
    _WAY_RRPV,
    _WAY_SIG,
    BRRIPPolicy,
    DRRIPPolicy,
    FIFOPolicy,
    HawkeyePolicy,
    LRUPolicy,
    MinPolicy,
    RandomPolicy,
    SHiPPolicy,
    SRRIPPolicy,
    UnifiedCache,
    make_policy,
    next_use_index,
    signature_column,
)
from repro.cache.stackdist import replay_trace_sweep
from repro.evalharness.experiment import (
    DEFAULT_CACHE,
    _static_bypass_checked,
    conventional_config,
)
from repro.evalharness.figure5 import figure5_options
from repro.programs import get_benchmark
from repro.unified.pipeline import compile_source
from repro.vm.memory import RecordingMemory
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE, TraceBuffer

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "figure5.json"
)

#: Every protocol operation the semantics core calls on a policy.
PROTOCOL_OPS = (
    "reset", "lookup", "touch", "room", "evict", "install",
    "invalidate", "demote", "entries",
)

ONLINE_POLICIES = ("lru", "fifo", "random")

#: The predictive zoo (docs/POLICIES.md); all online, all held to the
#: same cross-engine battery as the classics.
ZOO_POLICIES = ("srrip", "brrip", "drrip", "ship", "hawkeye")

ALL_ONLINE_POLICIES = ONLINE_POLICIES + ZOO_POLICIES

#: Policies that consume trace positions (and, for the predictors,
#: precomputed trace columns).
INDEXED_POLICIES = ("min", "ship", "hawkeye")


def build_policy(policy, trace):
    """A ready policy instance for ``policy`` over ``trace``."""
    if policy == "min":
        return MinPolicy(next_use_index(trace, 1, True))
    return policy_for_trace(trace, CacheConfig(policy=policy, seed=1))


def make_trace(refs):
    trace = TraceBuffer()
    for address, is_write, bypass, kill in refs:
        flags = 0
        if is_write:
            flags |= FLAG_WRITE
        if bypass:
            flags |= FLAG_BYPASS
        if kill:
            flags |= FLAG_KILL
        trace.append(address, flags)
    return trace


HAND_REFS = [
    (0, False, False, False),
    (1, True, False, False),
    (2, False, False, False),
    (3, True, False, True),
    (0, False, False, False),
    (4, False, True, False),
    (1, False, True, True),
    (5, True, True, False),
    (6, True, False, False),
    (7, False, False, True),
    (0, True, False, False),
    (8, False, False, False),
    (9, False, False, False),
    (1, False, False, False),
    (3, False, False, False),
]


def policy_configs(policy):
    """The behaviorally distinct config family for one policy name."""
    base = dict(size_words=8, line_words=1, associativity=2, policy=policy)
    if policy == "random":
        base["seed"] = 17
    return [
        CacheConfig(**base),
        CacheConfig(**dict(base, honor_bypass=False, honor_kill=False)),
        CacheConfig(**dict(base, write_policy="writethrough")),
        CacheConfig(**dict(base, allocate_on_write=False)),
        CacheConfig(**dict(base, kill_mode="demote")),
    ]


class TestProtocolSurface:
    def test_make_policy_dispatch(self):
        assert isinstance(
            make_policy(CacheConfig(policy="lru")), LRUPolicy
        )
        assert isinstance(
            make_policy(CacheConfig(policy="fifo")), FIFOPolicy
        )
        assert isinstance(
            make_policy(CacheConfig(policy="random", seed=1)), RandomPolicy
        )
        assert isinstance(
            make_policy(CacheConfig(policy="lru"), next_use=[]), MinPolicy
        )
        assert isinstance(
            make_policy(CacheConfig(policy="srrip")), SRRIPPolicy
        )
        assert isinstance(
            make_policy(CacheConfig(policy="brrip")), BRRIPPolicy
        )
        assert isinstance(
            make_policy(CacheConfig(policy="drrip")), DRRIPPolicy
        )
        assert isinstance(
            make_policy(CacheConfig(policy="ship"), signatures=[]),
            SHiPPolicy,
        )
        assert isinstance(
            make_policy(
                CacheConfig(policy="hawkeye"), next_use=[], signatures=[]
            ),
            HawkeyePolicy,
        )

    def test_predictor_policies_demand_their_columns(self):
        with pytest.raises(ValueError, match="signature column"):
            make_policy(CacheConfig(policy="ship"))
        with pytest.raises(ValueError, match="next-use and signature"):
            make_policy(CacheConfig(policy="hawkeye"))
        with pytest.raises(ValueError, match="next-use and signature"):
            make_policy(CacheConfig(policy="hawkeye"), signatures=[])

    def test_min_is_not_an_online_policy(self):
        """MIN rides via MinConfig + next-use, never as a config
        policy string — the config constructor rejects it."""
        with pytest.raises(ValueError, match="unknown policy"):
            CacheConfig(policy="min")

    def test_unknown_policy_raises(self):
        class Stub:
            policy = "plru"

        with pytest.raises(ValueError, match="unknown policy"):
            make_policy(Stub())

    @pytest.mark.parametrize("policy", ALL_ONLINE_POLICIES + ("min",))
    def test_protocol_operations_exist(self, policy):
        instance = build_policy(policy, make_trace(HAND_REFS))
        if instance is None:
            instance = make_policy(CacheConfig(policy=policy, seed=1))
        for op in PROTOCOL_OPS:
            assert callable(getattr(instance, op)), (policy, op)
        assert isinstance(instance.needs_index, bool)
        assert instance.needs_index == (policy in INDEXED_POLICIES)
        assert isinstance(instance.collapse_safe, bool)
        assert instance.collapse_safe == (policy not in ZOO_POLICIES)

    @pytest.mark.parametrize("policy", ALL_ONLINE_POLICIES)
    def test_capacity_never_exceeded(self, policy):
        config = CacheConfig(
            size_words=8, line_words=1, associativity=2, policy=policy,
            seed=5,
        )
        trace = make_trace(HAND_REFS)
        core = UnifiedCache(config, policy=policy_for_trace(trace, config))
        for index, (address, is_write, bypass, kill) in enumerate(HAND_REFS):
            core.access(address, is_write, bypass, kill, index=index)
            counts = {}
            for block, entry in core.policy.entries():
                assert entry[0] in (True, False)
                set_index = block % config.num_sets
                counts[set_index] = counts.get(set_index, 0) + 1
            for set_index, count in counts.items():
                assert count <= config.associativity, (policy, set_index)

    @pytest.mark.parametrize("policy", ALL_ONLINE_POLICIES)
    def test_fixed_seed_determinism(self, policy):
        """The same config replays to the same stats, run after run."""
        trace = make_trace(HAND_REFS)
        config = CacheConfig(
            size_words=8, line_words=1, associativity=2, policy=policy,
            seed=17,
        )
        first = replay_trace(trace, config)
        second = replay_trace(trace, config)
        assert first.as_dict() == second.as_dict()

    def test_random_seed_changes_the_draws(self):
        """Different seeds must be able to produce different victims
        (the counter RNG is seeded, not degenerate)."""
        refs = [(a % 12, a % 3 == 0, False, False) for a in range(400)]
        trace = make_trace(refs)
        outcomes = {
            replay_trace(
                trace,
                CacheConfig(size_words=4, line_words=1, associativity=4,
                            policy="random", seed=seed),
            ).hits
            for seed in range(8)
        }
        assert len(outcomes) > 1


class TestCrossEngineBitIdentity:
    """serial replay == multi replay == sweep dispatcher, per policy."""

    def serial(self, trace, spec):
        if isinstance(spec, MinConfig):
            return replay_trace(
                trace,
                policy="min",
                size_words=spec.config.size_words,
                line_words=spec.config.line_words,
                associativity=spec.config.associativity,
                honor_bypass=spec.config.honor_bypass,
                honor_kill=spec.config.honor_kill,
                kill_mode=spec.config.kill_mode,
            )
        return replay_trace(trace, spec)

    def engines(self, trace, specs):
        serial = [self.serial(trace, spec) for spec in specs]
        multi = replay_trace_multi(trace, specs)
        auto = replay_trace_sweep(trace, specs, engine="auto")
        fallback = replay_trace_sweep(trace, specs, engine="multi")
        for spec, want, a, b, c in zip(specs, serial, multi, auto, fallback):
            assert a.as_dict() == want.as_dict(), ("multi", spec)
            assert b.as_dict() == want.as_dict(), ("auto", spec)
            assert c.as_dict() == want.as_dict(), ("fallback", spec)

    @pytest.mark.parametrize("policy", ALL_ONLINE_POLICIES)
    def test_hand_trace(self, policy):
        self.engines(make_trace(HAND_REFS), policy_configs(policy))

    def test_hand_trace_min(self):
        trace = make_trace(HAND_REFS)
        specs = [
            MinConfig(size_words=8, line_words=1, associativity=2),
            MinConfig(size_words=8, line_words=1, associativity=2,
                      honor_kill=False),
            MinConfig(size_words=16, line_words=1, associativity=4,
                      kill_mode="demote"),
        ]
        self.engines(trace, specs)

    @pytest.fixture(scope="class")
    def fuzz_traces(self):
        from repro.robustness.generator import generate_program
        from repro.unified.pipeline import CompilationOptions

        traces = []
        for seed in (7, 23):
            generated = generate_program(seed)
            program = compile_source(
                generated.source,
                CompilationOptions(scheme="unified", promotion="aggressive"),
            )
            memory = RecordingMemory()
            program.run(memory=memory)
            traces.append(memory.buffer)
        return traces

    @pytest.mark.parametrize("policy", ALL_ONLINE_POLICIES)
    def test_fuzzed_traces(self, policy, fuzz_traces):
        for trace in fuzz_traces:
            self.engines(trace, policy_configs(policy))

    def test_fuzzed_traces_min(self, fuzz_traces):
        for trace in fuzz_traces:
            self.engines(trace, [
                MinConfig(size_words=8, line_words=1, associativity=2),
                MinConfig(size_words=16, line_words=1, associativity=4),
            ])

    def test_mixed_policy_battery_one_call(self, fuzz_traces):
        """One sweep call spanning every registered policy routes each
        spec to its engine and still matches the serial path
        spec-by-spec."""
        specs = [
            CacheConfig(size_words=8, associativity=2, policy="lru"),
            CacheConfig(size_words=8, associativity=2, policy="fifo"),
            CacheConfig(size_words=8, associativity=2, policy="random",
                        seed=3),
            MinConfig(size_words=8, line_words=1, associativity=2),
        ] + [
            CacheConfig(size_words=8, associativity=2, policy=policy)
            for policy in ZOO_POLICIES
        ]
        for trace in fuzz_traces:
            self.engines(trace, specs)


class TestKillBypassInteraction:
    """Per-policy unit cases for the kill/bypass semantics (the
    interaction table in docs/POLICIES.md)."""

    def drive(self, policy, refs, **overrides):
        params = dict(size_words=4, line_words=1, associativity=2,
                      policy=policy, seed=9)
        params.update(overrides)
        config = CacheConfig(**params)
        trace = make_trace(refs)
        core = UnifiedCache(config, policy=policy_for_trace(trace, config))
        for index, (address, flags) in enumerate(trace):
            core.access(
                address,
                bool(flags & FLAG_WRITE),
                bool(flags & FLAG_BYPASS),
                bool(flags & FLAG_KILL),
                index=index,
            )
        return core

    def blocks(self, core):
        return {block for block, _entry in core.policy.entries()}

    @pytest.mark.parametrize("policy", ALL_ONLINE_POLICIES)
    def test_kill_invalidate_drops_the_line(self, policy):
        core = self.drive(policy, [
            (0, False, False, False),
            (0, False, False, True),
        ])
        assert 0 not in self.blocks(core)

    @pytest.mark.parametrize("policy", ALL_ONLINE_POLICIES)
    def test_kill_demote_marks_dead_but_keeps_the_line(self, policy):
        core = self.drive(policy, [
            (0, False, False, False),
            (2, False, False, False),
            (0, False, False, True),
        ], kill_mode="demote")
        entries = dict(core.policy.entries())
        assert set(entries) >= {0, 2}
        assert entries[0][ENTRY_DEAD]
        assert not entries[2][ENTRY_DEAD]

    @pytest.mark.parametrize("policy", ZOO_POLICIES)
    def test_demote_forces_predicted_dead(self, policy):
        """A killed line lands at distant RRPV with its signature
        cleared — the compiler's verdict overrides the predictor."""
        core = self.drive(policy, [
            (0, False, False, False),
            (2, False, False, False),
            (0, False, False, True),
        ], kill_mode="demote")
        entries = dict(core.policy.entries())
        assert entries[0][_WAY_RRPV] == RRPV_MAX
        assert entries[0][_WAY_SIG] is None

    @pytest.mark.parametrize("policy", ALL_ONLINE_POLICIES)
    def test_demoted_line_is_the_next_victim(self, policy):
        """Dead lines are evicted first under every policy — the
        paper's dead-line reuse is policy-independent."""
        core = self.drive(policy, [
            (0, False, False, False),
            (2, False, False, False),
            (0, False, False, True),
            (4, False, False, False),
        ], kill_mode="demote")
        assert self.blocks(core) & {0, 2, 4} == {2, 4}

    @pytest.mark.parametrize("policy", ALL_ONLINE_POLICIES)
    def test_bypass_never_installs(self, policy):
        core = self.drive(policy, [(0, False, True, False)])
        assert self.blocks(core) == set()
        assert core.stats.refs_bypassed == 1

    def test_ship_kill_is_predictor_exempt(self):
        """Killing a never-reused line must not detrain the SHCT —
        compiler knowledge is not predictor evidence."""
        control = self.drive("ship", [
            (0, False, False, False),
            (2, False, False, False),
        ], size_words=2, associativity=1)
        assert control.policy._shct == {0: SHCT_INIT - 1}
        killed = self.drive("ship", [
            (0, False, False, True),
            (2, False, False, False),
        ], size_words=2, associativity=1, kill_mode="demote")
        assert killed.policy._shct == {}


class TestFunctionalTwinZoo:
    """The data-carrying functional twin replays every zoo policy
    bit-identically to the trace engines (the two-pass scheme:
    record the trace, build the predictor columns, re-run)."""

    @pytest.mark.parametrize("policy", ZOO_POLICIES + ("random",))
    def test_twin_matches_replay(self, policy):
        program = compile_source(
            get_benchmark("puzzle").source, figure5_options()
        )
        memory = RecordingMemory()
        output = program.run(memory=memory).output
        trace = memory.buffer
        config = CacheConfig(
            size_words=64, line_words=1, associativity=4,
            policy=policy, seed=11,
        )
        want = replay_trace(trace, config)
        twin = DataCachedMemory(
            config, policy=policy_for_trace(trace, config)
        )
        fresh = compile_source(
            get_benchmark("puzzle").source, figure5_options()
        )
        result = fresh.run(memory=twin)
        assert result.output == output
        assert twin.stats.as_dict() == want.as_dict()


class TestGoldenFigure5Pin:
    """The golden Figure 5 numbers through all four engines.

    Two benchmarks keep the runtime proportionate; the CI matrix job
    runs the full table per engine via ``REPRO_GOLDEN_ENGINE``.
    """

    NAMES = ("towers", "intmm")

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH) as handle:
            return json.load(handle)

    @pytest.fixture(scope="class")
    def runs(self):
        options = figure5_options()
        out = {}
        for name in self.NAMES:
            program = compile_source(get_benchmark(name).source, options)
            memory = RecordingMemory()
            program.run(memory=memory)
            out[name] = (program, memory.buffer)
        return out

    def payload(self, program, summary, unified, conventional):
        return {
            "static_percent_unambiguous":
                program.static.percent_unambiguous,
            "static_bypass_checked":
                _static_bypass_checked(program, DEFAULT_CACHE),
            "dynamic_percent_unambiguous":
                100.0 * summary["unambiguous"] / summary["total"],
            "cache_traffic_reduction":
                unified.cache_traffic_reduction_vs(conventional),
            "bus_traffic_reduction":
                unified.bus_traffic_reduction_vs(conventional),
            "dynamic_refs": summary["total"],
        }

    @pytest.mark.parametrize("engine", ["stackdist", "multi"])
    def test_sweep_engines_match_golden(self, engine, runs, golden):
        specs = [DEFAULT_CACHE, conventional_config(DEFAULT_CACHE)]
        for name, (program, trace) in runs.items():
            unified, conventional = replay_trace_sweep(
                trace, specs, engine=engine
            )
            assert self.payload(
                program, trace.summary(), unified, conventional
            ) == golden[name], (engine, name)

    def test_online_cache_matches_golden(self, runs, golden):
        for name, (program, trace) in runs.items():
            stats = []
            for config in (DEFAULT_CACHE,
                           conventional_config(DEFAULT_CACHE)):
                cache = Cache(config)
                for address, flags in trace:
                    cache.access(
                        address,
                        bool(flags & FLAG_WRITE),
                        bool(flags & FLAG_BYPASS),
                        bool(flags & FLAG_KILL),
                    )
                stats.append(cache.stats)
            assert self.payload(
                program, trace.summary(), stats[0], stats[1]
            ) == golden[name], name

    def test_functional_twin_matches_golden(self, runs, golden):
        options = figure5_options()
        for name, (program, trace) in runs.items():
            stats = []
            for config in (DEFAULT_CACHE,
                           conventional_config(DEFAULT_CACHE)):
                functional = DataCachedMemory(config)
                fresh = compile_source(get_benchmark(name).source, options)
                fresh.run(memory=functional)
                stats.append(functional.stats)
            assert self.payload(
                program, trace.summary(), stats[0], stats[1]
            ) == golden[name], name


class TestSharedNextUse:
    def test_next_use_shared_across_min_specs(self):
        """One next-use index answers every MIN geometry of a sweep."""
        trace = make_trace(HAND_REFS)
        shared = next_use_index(trace, 1, True)
        specs = [
            MinConfig(size_words=4, line_words=1, associativity=1),
            MinConfig(size_words=8, line_words=1, associativity=2),
        ]
        direct = replay_trace_multi(trace, specs)
        via_policy = [
            UnifiedCache(spec.config, policy=MinPolicy(shared))
            for spec in specs
        ]
        for core in via_policy:
            for index, (address, flags) in enumerate(trace):
                core.access(
                    address,
                    bool(flags & FLAG_WRITE),
                    bool(flags & FLAG_BYPASS),
                    bool(flags & FLAG_KILL),
                    index=index,
                )
        for want, core in zip(direct, via_policy):
            assert core.stats.as_dict() == want.as_dict()
