"""Tests for Section 4.4's bypass-bit transmission mechanisms."""

import pytest

from repro.unified.encoding import (
    DEFAULT_BYPASS_BIT,
    PatternControlEncoder,
    address_space_limit,
    decode_address,
    encode_address,
    encode_trace,
)
from repro.vm.trace import (
    FLAG_BYPASS,
    FLAG_INSTRUCTION,
    FLAG_WRITE,
    TraceBuffer,
)


def make_trace(entries):
    trace = TraceBuffer()
    for address, flags in entries:
        trace.append(address, flags)
    return trace


class TestAddressBitScheme:
    def test_roundtrip_plain(self):
        encoded = encode_address(1234, False)
        assert decode_address(encoded) == (1234, False)

    def test_roundtrip_bypass(self):
        encoded = encode_address(1234, True)
        assert encoded != 1234
        assert decode_address(encoded) == (1234, True)

    def test_all_addresses_roundtrip(self):
        for address in (0, 1, 1023, 65536, address_space_limit() - 1):
            for bypass in (False, True):
                encoded = encode_address(address, bypass)
                assert decode_address(encoded) == (address, bypass)

    def test_address_space_is_halved(self):
        limit = address_space_limit()
        with pytest.raises(ValueError):
            encode_address(limit, False)
        with pytest.raises(ValueError):
            encode_address(limit + 5, True)

    def test_custom_bit_position(self):
        encoded = encode_address(3, True, bypass_bit=8)
        assert encoded == 3 | (1 << 8)
        assert decode_address(encoded, bypass_bit=8) == (3, True)

    def test_encode_trace_lossless(self):
        trace = make_trace([
            (100, 0),
            (200, FLAG_BYPASS),
            (300, FLAG_WRITE | FLAG_BYPASS),
        ])
        decoded = [
            decode_address(encoded)
            for encoded, _flags in encode_trace(trace)
        ]
        assert decoded == [(100, False), (200, True), (300, True)]


class TestPatternControlScheme:
    def test_cost_rounding(self):
        encoder = PatternControlEncoder(pattern_width=8)
        trace = make_trace([(i, 0) for i in range(17)])
        cost = encoder.cost(trace)
        assert cost.references == 17
        assert cost.control_instructions == 3  # ceil(17/8)
        assert cost.overhead_ratio == pytest.approx(3 / 17)

    def test_instruction_events_excluded(self):
        encoder = PatternControlEncoder(pattern_width=4)
        trace = make_trace(
            [(1, FLAG_INSTRUCTION)] * 10 + [(2, 0)] * 4
        )
        cost = encoder.cost(trace)
        assert cost.references == 4
        assert cost.control_instructions == 1

    def test_patterns_content(self):
        encoder = PatternControlEncoder(pattern_width=4)
        trace = make_trace([
            (1, FLAG_BYPASS),
            (2, 0),
            (3, FLAG_BYPASS),
            (4, 0),
            (5, FLAG_BYPASS),
        ])
        patterns = list(encoder.patterns(trace))
        assert patterns == [0b0101, 0b1]

    def test_empty_trace(self):
        encoder = PatternControlEncoder()
        cost = encoder.cost(make_trace([]))
        assert cost.control_instructions == 0
        assert cost.overhead_ratio == 0.0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PatternControlEncoder(pattern_width=0)

    def test_realistic_overhead(self):
        """The paper: 'the high frequency of cache bypass control
        instructions would limit performance' — with a 24-bit pattern
        the overhead is one extra instruction per 24 references."""
        from repro.evalharness.sweeps import _trace_for

        trace, _program = _trace_for("queen")
        cost = PatternControlEncoder(pattern_width=24).cost(trace)
        assert cost.overhead_ratio == pytest.approx(1 / 24, rel=0.01)
