"""Protocol-transparency tests: the data-carrying cache must never
change program behaviour (paper's hardware-correctness obligation).

A program is executed twice — once on flat memory, once through
:class:`DataCachedMemory`, which implements the full unified protocol
(bypass path, coherence probes, kill-bit dead drops) *with the data
actually stored in the cache lines*.  Outputs, return values and final
global memory must agree.
"""

import pytest

from conftest import ALL_CONFIGS, compile_program

from repro.cache.cache import CacheConfig
from repro.cache.functional import DataCachedMemory
from repro.ir.function import GLOBAL_BASE
from repro.vm.memory import FlatMemory

PROGRAMS = {
    "scalars": """
        int main() { int x; int y; x = 3; y = x * 2 + 1; print(x + y);
                     return y; }
    """,
    "arrays": """
        int a[16];
        int main() {
            int i;
            for (i = 0; i < 16; i++) a[i] = i * i;
            for (i = 0; i < 16; i++) a[i] = a[i] + a[(i + 1) % 16];
            print(a[0]); print(a[15]);
            return 0;
        }
    """,
    "pointers": """
        int buf[8];
        void zap(int *p, int n) { int i; for (i = 0; i < n; i++) p[i] = -i; }
        int main() {
            int *p;
            zap(buf, 8);
            p = &buf[4];
            *p = *p * 10;
            print(buf[4]);
            return 0;
        }
    """,
    "recursion": """
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() { print(fib(12)); return 0; }
    """,
    "aliased_scalars": """
        int main() {
            int x; int y; int *p;
            x = 1; y = 2;
            p = &x;
            *p = *p + y;
            p = &y;
            *p = x * 10;
            print(x); print(y);
            return 0;
        }
    """,
    "globals_across_calls": """
        int counter;
        void bump() { counter = counter + 1; }
        int main() {
            int i;
            counter = 0;
            for (i = 0; i < 10; i++) bump();
            print(counter);
            return 0;
        }
    """,
}

#: Deliberately tiny caches so eviction, write-back, probe and kill
#: paths all fire constantly.
CACHE_SHAPES = [
    dict(size_words=4, associativity=1),
    dict(size_words=4, associativity=4),
    dict(size_words=16, associativity=2),
    dict(size_words=64, associativity=4),
]


def run_both(source, scheme, promotion, cache_kwargs):
    program = compile_program(source, scheme=scheme, promotion=promotion)
    flat_result = program.run(memory=FlatMemory())

    cached_memory = DataCachedMemory(
        CacheConfig(line_words=1, policy="lru", **cache_kwargs)
    )
    cached_result = program.run(memory=cached_memory)
    return program, flat_result, cached_result, cached_memory


class TestTransparency:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    @pytest.mark.parametrize("cache_kwargs", CACHE_SHAPES,
                             ids=lambda c: "c{size_words}w{associativity}a"
                             .format(**c))
    def test_outputs_identical(self, name, cache_kwargs):
        program, flat, cached, _memory = run_both(
            PROGRAMS[name], "unified", "modest", cache_kwargs
        )
        assert cached.output == flat.output
        assert cached.return_value == flat.return_value

    @pytest.mark.parametrize("scheme,promotion", ALL_CONFIGS)
    def test_all_configs_on_tiny_cache(self, scheme, promotion):
        for name, source in sorted(PROGRAMS.items()):
            _program, flat, cached, _memory = run_both(
                source, scheme, promotion, dict(size_words=4, associativity=2)
            )
            assert cached.output == flat.output, name
            assert cached.return_value == flat.return_value, name

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_final_global_memory_coherent(self, name):
        program, _flat, _cached, memory = run_both(
            PROGRAMS[name], "unified", "none", dict(size_words=8,
                                                    associativity=2)
        )
        # Compare the coherent view (cache wins) against a flat rerun.
        flat = FlatMemory()
        program.run(memory=flat)
        module = program.module
        for symbol in module.globals:
            base = symbol.global_address
            size = symbol.type.size_words() if symbol.is_array() else 1
            for offset in range(size):
                assert memory.peek(base + offset) == flat.peek(base + offset), (
                    symbol.name, offset)

    def test_kill_bits_exercised(self):
        # The property is only meaningful if dead drops actually occur.
        source = PROGRAMS["recursion"]
        program = compile_program(source, scheme="unified",
                                  promotion="aggressive")
        memory = DataCachedMemory(size_words=16, associativity=2)
        program.run(memory=memory)
        assert memory.stats.kills > 0
        assert memory.stats.probe_hits > 0

    def test_functional_requires_line_size_one(self):
        with pytest.raises(ValueError):
            DataCachedMemory(size_words=16, line_words=4, associativity=2)

    def test_stats_shape_matches_performance_model(self):
        """The functional twin and the tag-only simulator must agree on
        hit/miss/bypass accounting for the same reference stream."""
        from repro.cache.replay import replay_trace
        from repro.vm.memory import RecordingMemory

        source = PROGRAMS["arrays"]
        program = compile_program(source, scheme="unified", promotion="none")

        recorder = RecordingMemory()
        program.run(memory=recorder)
        perf = replay_trace(recorder.buffer, size_words=16, associativity=2)

        functional = DataCachedMemory(size_words=16, associativity=2)
        program.run(memory=functional)

        assert functional.stats.refs_total == perf.refs_total
        assert functional.stats.refs_bypassed == perf.refs_bypassed
        assert functional.stats.hits == perf.hits
        assert functional.stats.misses == perf.misses
        assert functional.stats.dead_drops == perf.dead_drops
        assert functional.stats.writebacks == perf.writebacks

    def test_peek_prefers_cached_copy(self):
        memory = DataCachedMemory(size_words=4, associativity=4)
        from repro.ir.instructions import RefInfo, RegionKind

        ref = RefInfo("t", RegionKind.DIRECT)
        ref.annotate(None, bypass=False, kill=False)
        memory.write(GLOBAL_BASE, 42, ref)  # dirty in cache only
        assert memory.main.get(GLOBAL_BASE, 0) == 0
        assert memory.peek(GLOBAL_BASE) == 42
        memory.flush()
        assert memory.main[GLOBAL_BASE] == 42
