"""Execution budgets: runaway programs terminate with clean errors.

An unbounded loop, unbounded recursion, or a runaway reference stream
must surface as :class:`ResourceExhausted` — catchable both as the new
:class:`repro.errors.ReproError` and as the legacy ``VMError`` — never
as a hang or a host OOM.
"""

import pytest

import repro.errors
from repro.lang.errors import ResourceExhausted, VMError
from repro.unified.pipeline import compile_source
from repro.vm import machine as machine_mod
from repro.vm.machine import set_default_max_steps
from repro.vm.memory import RecordingMemory
from repro.vm.trace import TraceBuffer

INFINITE_LOOP = """
int main() {
    int x;
    x = 0;
    while (1) { x = x + 1; }
    return x;
}
"""

INFINITE_RECURSION = """
int f(int n) { return f(n + 1); }
int main() { return f(0); }
"""


class TestFuel:
    def test_infinite_loop_raises_resource_exhausted(self):
        program = compile_source(INFINITE_LOOP)
        with pytest.raises(ResourceExhausted, match="exceeded"):
            program.run(max_steps=50_000)

    def test_resource_exhausted_is_both_roots(self):
        program = compile_source(INFINITE_LOOP)
        with pytest.raises(VMError):
            program.run(max_steps=50_000)
        with pytest.raises(repro.errors.ReproError) as excinfo:
            program.run(max_steps=50_000)
        assert isinstance(excinfo.value, repro.errors.ResourceExhausted)
        assert excinfo.value.stage == "limits"

    def test_budget_is_not_charged_to_healthy_programs(self):
        program = compile_source(
            "int main() { int i; int s; s = 0;"
            " for (i = 0; i < 10; i = i + 1) { s = s + i; }"
            " return s; }"
        )
        assert program.run(max_steps=10_000).return_value == 45

    def test_default_budget_is_tunable(self):
        program = compile_source(INFINITE_LOOP)
        original = machine_mod.DEFAULT_MAX_STEPS
        try:
            set_default_max_steps(20_000)
            with pytest.raises(ResourceExhausted):
                program.run()
        finally:
            set_default_max_steps(original)

    def test_set_default_none_keeps_current(self):
        original = machine_mod.DEFAULT_MAX_STEPS
        assert set_default_max_steps(None) == original


class TestRecursion:
    def test_infinite_recursion_raises_resource_exhausted(self):
        program = compile_source(INFINITE_RECURSION)
        with pytest.raises(ResourceExhausted, match="recursion"):
            program.run()

    def test_bounded_recursion_still_works(self):
        program = compile_source(
            "int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); }"
            "int main() { return f(10); }"
        )
        assert program.run().return_value == 3628800


class TestTraceBuffer:
    def test_trace_cap_raises_resource_exhausted(self):
        buffer = TraceBuffer(max_events=4)
        for index in range(4):
            buffer.append(index, 0)
        with pytest.raises(ResourceExhausted, match="trace buffer"):
            buffer.append(99, 0)

    def test_uncapped_buffer_keeps_appending(self):
        buffer = TraceBuffer(max_events=None)
        for index in range(10_000):
            buffer.append(index, 0)
        assert len(buffer) == 10_000

    def test_recording_memory_threads_cap(self):
        from repro.unified.pipeline import CompilationOptions

        program = compile_source(
            "int g; int main() { int i;"
            " for (i = 0; i < 100; i = i + 1) { g = i; }"
            " return g; }",
            CompilationOptions(promotion="none"),
        )
        memory = RecordingMemory(max_events=8)
        with pytest.raises(ResourceExhausted):
            program.run(memory=memory)


class TestRunKwargs:
    def test_max_steps_flows_through_run(self):
        program = compile_source(INFINITE_LOOP)
        with pytest.raises(ResourceExhausted):
            program.run(max_steps=12_345)
        # None falls back to the (large) module default: budget large
        # enough that a small healthy program never trips it.
        small = compile_source("int main() { return 7; }")
        assert small.run(max_steps=None).return_value == 7
