"""Parser unit tests: grammar coverage and desugarings."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program
from repro.lang.types import INT, ArrayType, PointerType


def parse_main_body(body):
    program = parse_program("int main() { %s }" % body)
    return program.functions()[0].body.statements


def parse_expr(text):
    statements = parse_main_body("%s;" % text)
    assert isinstance(statements[0], ast.ExprStmt)
    return statements[0].expr


class TestTopLevel:
    def test_empty_program(self):
        assert parse_program("").items == []

    def test_global_scalar(self):
        program = parse_program("int x;")
        decl = program.globals()[0]
        assert decl.name == "x"
        assert decl.var_type == INT

    def test_global_with_initializer(self):
        decl = parse_program("int x = 42;").globals()[0]
        assert isinstance(decl.init, ast.IntLit)
        assert decl.init.value == 42

    def test_global_array(self):
        decl = parse_program("int a[100];").globals()[0]
        assert decl.var_type == ArrayType(INT, 100)

    def test_global_pointer(self):
        decl = parse_program("int *p;").globals()[0]
        assert decl.var_type == PointerType(INT)

    def test_multiple_declarators(self):
        program = parse_program("int x, y = 3, z[4];")
        names = [decl.name for decl in program.globals()]
        assert names == ["x", "y", "z"]

    def test_function_definition(self):
        func = parse_program("int f(int a, int *b, int c[]) { }").functions()[0]
        assert func.name == "f"
        assert func.params[0].param_type == INT
        assert func.params[1].param_type == PointerType(INT)
        assert func.params[2].param_type == ArrayType(INT, None)

    def test_void_function(self):
        func = parse_program("void g() { }").functions()[0]
        assert func.return_type.is_void()


class TestStatements:
    def test_local_declarations(self):
        statements = parse_main_body("int x; int y = 1, z;")
        assert isinstance(statements[0], ast.DeclStmt)
        assert len(statements[1].decls) == 2

    def test_if_without_else(self):
        statements = parse_main_body("if (1) x;")
        node = statements[0]
        assert isinstance(node, ast.If)
        assert node.else_branch is None

    def test_if_else_chain(self):
        statements = parse_main_body("if (1) x; else if (2) y; else z;")
        node = statements[0]
        assert isinstance(node.else_branch, ast.If)

    def test_dangling_else_binds_to_nearest_if(self):
        statements = parse_main_body("if (1) if (2) x; else y;")
        outer = statements[0]
        assert outer.else_branch is None
        assert isinstance(outer.then_branch, ast.If)
        assert outer.then_branch.else_branch is not None

    def test_while(self):
        statements = parse_main_body("while (x) y;")
        assert isinstance(statements[0], ast.While)

    def test_do_while(self):
        statements = parse_main_body("do x; while (y);")
        assert isinstance(statements[0], ast.DoWhile)

    def test_for_full(self):
        statements = parse_main_body("for (i = 0; i < 10; i++) x;")
        node = statements[0]
        assert isinstance(node, ast.For)
        assert node.init is not None
        assert node.cond is not None
        assert node.update is not None

    def test_for_with_declaration(self):
        statements = parse_main_body("for (int i = 0; i < 3; i++) x;")
        assert isinstance(statements[0].init, ast.DeclStmt)

    def test_for_empty_clauses(self):
        statements = parse_main_body("for (;;) break;")
        node = statements[0]
        assert node.init is None and node.cond is None and node.update is None

    def test_return_value_and_bare(self):
        statements = parse_main_body("return 1; return;")
        assert statements[0].value is not None
        assert statements[1].value is None

    def test_break_continue(self):
        statements = parse_main_body("break; continue;")
        assert isinstance(statements[0], ast.Break)
        assert isinstance(statements[1], ast.Continue)

    def test_empty_statement(self):
        statements = parse_main_body(";;")
        assert len(statements) == 2

    def test_nested_blocks(self):
        statements = parse_main_body("{ { x; } }")
        inner = statements[0].statements[0]
        assert isinstance(inner, ast.Block)


class TestExpressionPrecedence:
    def test_mul_binds_tighter_than_add(self):
        expr = parse_expr("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_comparison_below_arithmetic(self):
        expr = parse_expr("a + 1 < b - 2")
        assert expr.op == "<"

    def test_logical_or_is_weakest(self):
        expr = parse_expr("a && b || c && d")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_equality_vs_relational(self):
        expr = parse_expr("a < b == c < d")
        assert expr.op == "=="

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_assignment_is_right_associative(self):
        expr = parse_expr("a = b = c")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_unary_minus(self):
        expr = parse_expr("-a * b")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.Unary)

    def test_unary_chains(self):
        expr = parse_expr("!!a")
        assert isinstance(expr, ast.Unary)
        assert isinstance(expr.operand, ast.Unary)


class TestPointerSyntax:
    def test_deref(self):
        assert isinstance(parse_expr("*p"), ast.Deref)

    def test_address_of(self):
        assert isinstance(parse_expr("&x"), ast.AddrOf)

    def test_deref_binds_tighter_than_binary(self):
        expr = parse_expr("*p + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.Deref)

    def test_index(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, ast.Index)
        assert expr.index.op == "+"

    def test_chained_index(self):
        expr = parse_expr("a[i][j]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_assign_through_deref(self):
        expr = parse_expr("*p = 5")
        assert isinstance(expr.target, ast.Deref)


class TestDesugaring:
    def test_plus_assign(self):
        expr = parse_expr("x += 2")
        assert isinstance(expr, ast.Assign)
        assert expr.value.op == "+"

    def test_minus_assign(self):
        expr = parse_expr("x -= 2")
        assert expr.value.op == "-"

    def test_postfix_increment(self):
        expr = parse_expr("x++")
        assert isinstance(expr, ast.Assign)
        assert expr.value.op == "+"
        assert expr.value.right.value == 1

    def test_prefix_decrement(self):
        expr = parse_expr("--x")
        assert isinstance(expr, ast.Assign)
        assert expr.value.op == "-"

    def test_compound_assign_to_element(self):
        expr = parse_expr("a[i] += 1")
        assert isinstance(expr.target, ast.Index)


class TestCalls:
    def test_no_args(self):
        expr = parse_expr("f()")
        assert isinstance(expr, ast.Call)
        assert expr.args == []

    def test_args(self):
        expr = parse_expr("f(1, x, g(2))")
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], ast.Call)


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "int main() { if (1) }",
            "int main() { x = ; }",
            "int main() { for (;; }",
            "int main() { a[1; }",
            "int f(,) { }",
            "int main() { 1 + ; }",
            "int x",
            "int main() { return 1 }",
            "int a[]; ",
        ],
    )
    def test_malformed_input(self, source):
        with pytest.raises(ParseError):
            parse_program(source)

    def test_error_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("int main() {\n  x = ;\n}")
        assert excinfo.value.location.line == 2
