"""The superinstruction (fused-run) fast table versus the oracle.

:meth:`Machine._fuse_block` compiles maximal straight-line runs of
register-only ops — optionally closed by one control op, with Jump
targets threaded through — into single exec-generated handlers.  This
suite holds the fused table to the same bar as the closure compiler:
identical observable behaviour to :class:`ReferenceMachine` (return
value, output, steps, registers, memory, traces), exact fuel
accounting at exhaustion, and an untouched per-instruction path
whenever an ``instruction_sink`` needs to see every fetch.
"""

import pytest

from repro.lang.errors import ResourceExhausted, VMError
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.machine import Machine
from repro.vm.memory import RecordingMemory
from repro.vm.reference import ReferenceMachine

AGGRESSIVE = CompilationOptions(scheme="unified", promotion="aggressive")


class _UnfusedMachine(Machine):
    """A Machine with fusion disabled — the per-instruction closure
    table, byte-for-byte the pre-superinstruction interpreter."""

    _enable_fusion = False


def _run(cls, program, max_steps=None, memory=None):
    vm = cls(program.module, memory=memory,
             machine=program.options.machine)
    result = vm.run(max_steps=max_steps)
    return vm, result


def assert_equivalent(source, options=None):
    program = compile_source(source, options or CompilationOptions())
    runs = []
    for cls in (Machine, _UnfusedMachine, ReferenceMachine):
        memory = RecordingMemory()
        vm, result = _run(cls, program, memory=memory)
        runs.append((vm, memory, result))
    (vm_a, mem_a, res_a) = runs[0]
    for vm_b, mem_b, res_b in runs[1:]:
        assert res_a.return_value == res_b.return_value
        assert res_a.output == res_b.output
        assert res_a.steps == res_b.steps
        assert vm_a.regs == vm_b.regs
        assert mem_a.flat.words == mem_b.flat.words
        assert list(mem_a.buffer) == list(mem_b.buffer)


class TestObservableEquivalence:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_benchmark_aggressive(self, name):
        """Aggressive promotion is where fusion coverage peaks (locals
        live in registers), so it is the sharpest differential."""
        assert_equivalent(get_benchmark(name).source, AGGRESSIVE)

    @pytest.mark.parametrize("name", ["sieve", "towers"])
    @pytest.mark.parametrize("promotion", ["none", "modest", "aggressive"])
    def test_promotion_levels(self, name, promotion):
        assert_equivalent(
            get_benchmark(name).source,
            CompilationOptions(scheme="unified", promotion=promotion),
        )

    @pytest.mark.parametrize("seed", [5, 23, 47, 101])
    def test_generated_program(self, seed):
        from repro.robustness.generator import generate_program

        assert_equivalent(generate_program(seed).source, AGGRESSIVE)

    def test_tight_self_loop_threads_correctly(self):
        """A block whose Jump closes back on itself — the thread pass
        unrolls one partial iteration and must stay exact."""
        source = """
        int main() {
            int i;
            int acc;
            i = 0;
            acc = 0;
            while (i < 1000) {
                acc = acc + i * 3 - 1;
                i = i + 1;
            }
            print(acc);
            return acc;
        }
        """
        assert_equivalent(source, AGGRESSIVE)


class TestFuelAccounting:
    LOOP = "int main() { while (1) { } return 0; }"

    def test_exhaustion_clamps_to_budget_plus_one(self):
        """The fast loop charges a whole run up front; on overrun it
        must report exhaustion exactly like the per-step loops do."""
        program = compile_source(self.LOOP, AGGRESSIVE)
        for cls in (Machine, _UnfusedMachine, ReferenceMachine):
            vm = cls(program.module, machine=program.options.machine)
            with pytest.raises(ResourceExhausted, match="exceeded 500 steps"):
                vm.run(max_steps=500)
            assert vm.steps == 501, cls.__name__

    @pytest.mark.parametrize("budget", [1, 2, 3, 7, 50, 499])
    def test_exhaustion_agrees_at_every_budget(self, budget):
        program = compile_source(
            get_benchmark("sieve").source, AGGRESSIVE
        )
        outcomes = []
        for cls in (Machine, ReferenceMachine):
            vm = cls(program.module, machine=program.options.machine)
            try:
                result = vm.run(max_steps=budget)
                outcomes.append(("done", result.steps, result.return_value))
            except ResourceExhausted:
                outcomes.append(("exhausted", vm.steps, None))
        assert outcomes[0] == outcomes[1]

    def test_successful_run_step_counts_match(self):
        program = compile_source(get_benchmark("towers").source, AGGRESSIVE)
        fused = _run(Machine, program)[1].steps
        unfused = _run(_UnfusedMachine, program)[1].steps
        assert fused == unfused


class TestErrorEquivalence:
    def test_division_by_zero_mid_run(self):
        """A trap raised from inside a fused run surfaces as the same
        VMError the scalar handler raises."""
        source = """
        int main() {
            int a;
            int b;
            a = 7;
            b = a - 7;
            a = a + 1;
            a = a / b;
            return a;
        }
        """
        program = compile_source(source, AGGRESSIVE)
        for cls in (Machine, _UnfusedMachine):
            vm = cls(program.module, machine=program.options.machine)
            with pytest.raises(VMError, match="division by zero"):
                vm.run()


class TestSinkGating:
    def test_sink_sees_every_instruction(self):
        """Fetch tracing must see the per-instruction stream, so a
        sinked Machine skips fusion entirely and matches the oracle."""
        program = compile_source(get_benchmark("towers").source, AGGRESSIVE)
        streams = []
        for cls in (Machine, ReferenceMachine):
            fetched = []
            vm = cls(program.module, machine=program.options.machine,
                     instruction_sink=fetched.append)
            vm.run()
            streams.append(fetched)
        assert streams[0] == streams[1]

    def test_sinked_machine_builds_no_fast_table(self):
        program = compile_source(get_benchmark("sieve").source, AGGRESSIVE)
        vm = Machine(program.module, machine=program.options.machine,
                     instruction_sink=lambda address: None)
        assert vm._fast_handlers is None
        assert vm._costs is None


class TestFastTableStructure:
    def test_overlay_layout(self):
        """Fused handlers overlay run heads; every slot still holds a
        callable, and costs are >= 2 exactly at the overlaid heads."""
        program = compile_source(get_benchmark("intmm").source, AGGRESSIVE)
        vm = Machine(program.module, machine=program.options.machine)
        assert vm._fast_handlers is not None
        assert len(vm._fast_handlers) == len(vm._handlers)
        assert len(vm._costs) == len(vm._handlers)
        fused_heads = [
            index for index, cost in enumerate(vm._costs) if cost > 1
        ]
        assert fused_heads, "aggressive intmm must fuse something"
        for index, handler in enumerate(vm._fast_handlers):
            assert callable(handler)
            if vm._costs[index] == 1:
                assert handler is vm._handlers[index]

    def test_reference_machine_opts_out(self):
        program = compile_source(get_benchmark("sieve").source, AGGRESSIVE)
        vm = ReferenceMachine(program.module,
                              machine=program.options.machine)
        assert vm._fast_handlers is None

    def test_fused_code_cache_is_bounded_and_reused(self):
        from repro.vm import machine as machine_mod

        program = compile_source(get_benchmark("sieve").source, AGGRESSIVE)
        Machine(program.module, machine=program.options.machine)
        before = len(machine_mod._FUSED_CODE_CACHE)
        assert 0 < before <= machine_mod._FUSED_CODE_CACHE_LIMIT
        # A second build of the same module re-uses the cached factories.
        Machine(program.module, machine=program.options.machine)
        assert len(machine_mod._FUSED_CODE_CACHE) == before
