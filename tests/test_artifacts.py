"""The content-addressed artifact cache and trace serialization.

A stored artifact must come back bit-identical (program, trace,
output, steps); a corrupt entry must degrade into a quarantined miss;
the content address must move whenever the source, the annotation
configuration, or the schema moves.

These are mechanism tests asserting exact hit/miss/quarantine
counters, so they mask any ambient ``REPRO_FAULT_PLAN`` (the chaos CI
job sets one suite-wide); the fault-injection behaviour of the store
has its own battery in ``tests/test_artifact_store.py``.
"""

import json
import os

import pytest

from repro import faultinject
from repro.evalharness.artifacts import (
    ArtifactCache,
    artifact_key,
    options_fingerprint,
)
from repro.lang.errors import VMError
from repro.programs import get_benchmark
from repro.unified.pipeline import CompilationOptions
from repro.vm.trace import (
    FLAG_BYPASS,
    FLAG_KILL,
    FLAG_WRITE,
    TRACE_MAGIC,
    TRACE_MAGIC_V1,
    TraceBuffer,
    _decode_deltas,
    _decode_deltas_py,
    _encode_deltas,
    _encode_deltas_py,
)


@pytest.fixture(autouse=True)
def _mask_ambient_fault_plan():
    with faultinject.fault_plan(None):
        yield


SIMPLE = """
int main() {
    int values[8];
    int i;
    for (i = 0; i < 8; i++) { values[i] = i * i; }
    print(values[3] + values[5]);
    return 0;
}
"""


class TestTraceSerialization:
    def _trace(self):
        trace = TraceBuffer()
        trace.append(0, FLAG_WRITE)
        trace.append(7, FLAG_BYPASS)
        trace.append(123456, FLAG_WRITE | FLAG_KILL)
        trace.append(3, 0)
        return trace

    def test_roundtrip(self):
        trace = self._trace()
        clone = TraceBuffer.from_bytes(trace.to_bytes())
        assert list(clone.addresses) == list(trace.addresses)
        assert list(clone.flags) == list(trace.flags)
        assert clone.summary() == trace.summary()

    def test_empty_roundtrip(self):
        clone = TraceBuffer.from_bytes(TraceBuffer().to_bytes())
        assert len(clone) == 0

    def test_save_load(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.bin"
        trace.save(str(path))
        clone = TraceBuffer.load(str(path))
        assert list(clone) == list(trace)

    def test_bad_magic_rejected(self):
        data = b"NOTMAGIC" + self._trace().to_bytes()[8:]
        with pytest.raises(ValueError, match="magic"):
            TraceBuffer.from_bytes(data)

    def test_truncated_rejected(self):
        data = self._trace().to_bytes()
        with pytest.raises(ValueError):
            TraceBuffer.from_bytes(data[:-3])

    def test_trailing_garbage_rejected(self):
        data = self._trace().to_bytes() + b"\x00"
        with pytest.raises(ValueError):
            TraceBuffer.from_bytes(data)

    def test_magic_constant_in_payload(self):
        assert self._trace().to_bytes().startswith(TRACE_MAGIC)


class TestTraceV2Codec:
    """The RPTRACE2 zigzag-varint delta codec behind save/load."""

    def _trace(self, addresses):
        trace = TraceBuffer()
        for index, address in enumerate(addresses):
            trace.append(address, index % 8)
        return trace

    #: Streams the codec must round-trip exactly: strided walks,
    #: backward jumps, repeats, and the int64 extremes whose deltas
    #: wrap 64-bit arithmetic.
    STREAMS = [
        [],
        [0],
        [5, 5, 5, 5],
        list(range(0, 400, 4)),
        [1000, 0, 999, 1, 998, 2],
        [0, (1 << 63) - 1, -(1 << 63), (1 << 63) - 1, 0],
        [-(1 << 63), (1 << 63) - 1],
    ]

    @pytest.mark.parametrize("addresses", STREAMS)
    def test_v2_roundtrip(self, addresses):
        trace = self._trace(addresses)
        clone = TraceBuffer.from_bytes(trace.to_bytes())
        assert list(clone.addresses) == list(trace.addresses)
        assert list(clone.flags) == list(trace.flags)

    @pytest.mark.parametrize("addresses", STREAMS)
    def test_v1_still_written_and_read(self, addresses):
        trace = self._trace(addresses)
        legacy = trace.to_bytes(version=1)
        assert legacy.startswith(TRACE_MAGIC_V1)
        clone = TraceBuffer.from_bytes(legacy)
        assert list(clone.addresses) == list(trace.addresses)
        assert list(clone.flags) == list(trace.flags)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            self._trace([1, 2]).to_bytes(version=3)

    @pytest.mark.parametrize("addresses", STREAMS)
    def test_numpy_and_python_encoders_agree(self, addresses):
        pytest.importorskip("numpy")
        packed = self._trace(addresses).addresses
        assert _encode_deltas(packed) == _encode_deltas_py(packed)

    @pytest.mark.parametrize("addresses", STREAMS)
    def test_numpy_and_python_decoders_agree(self, addresses):
        pytest.importorskip("numpy")
        packed = self._trace(addresses).addresses
        payload = _encode_deltas_py(packed)
        count = len(packed)
        assert list(_decode_deltas(payload, count)) == list(
            _decode_deltas_py(payload, count)
        )

    def test_small_deltas_compress(self):
        """The point of the codec: a strided walk costs about one byte
        per address instead of eight."""
        trace = self._trace(list(range(0, 4000, 4)))
        v1 = len(trace.to_bytes(version=1))
        v2 = len(trace.to_bytes())
        assert v2 < v1 / 3

    def test_truncated_varint_rejected(self):
        data = self._trace([1 << 40, 2 << 40, 3 << 40]).to_bytes()
        with pytest.raises(ValueError):
            TraceBuffer.from_bytes(data[:-4])

    def test_wrong_count_rejected(self):
        trace = self._trace([10, 20, 30])
        data = bytearray(trace.to_bytes())
        # The header's event count lives at offset 12 (magic + version).
        data[12] = 7
        with pytest.raises(ValueError):
            TraceBuffer.from_bytes(bytes(data))

    def test_overwide_varint_rejected(self):
        import struct

        # Eleven continuation-heavy bytes: wider than any 64-bit value.
        payload = b"\xff" * 10 + b"\x01" + b"\x00"
        data = struct.pack("<8sIQ", TRACE_MAGIC, 2, 1) + payload
        with pytest.raises(ValueError):
            TraceBuffer.from_bytes(data)

    def test_python_decoder_rejects_trailing_bytes(self):
        packed = self._trace([1, 2, 3]).addresses
        payload = _encode_deltas_py(packed) + b"\x05"
        with pytest.raises(ValueError, match="trailing"):
            _decode_deltas_py(payload, len(packed))

    def test_save_load_is_v2(self, tmp_path):
        trace = self._trace(list(range(64)))
        path = tmp_path / "trace.bin"
        trace.save(str(path))
        with open(str(path), "rb") as handle:
            assert handle.read(8) == TRACE_MAGIC
        clone = TraceBuffer.load(str(path))
        assert list(clone) == list(trace)


class TestArtifactKey:
    def test_key_stable(self):
        options = CompilationOptions()
        assert artifact_key(SIMPLE, options) == artifact_key(SIMPLE, options)

    def test_key_moves_with_source(self):
        options = CompilationOptions()
        assert artifact_key(SIMPLE, options) != artifact_key(
            SIMPLE + "\n", options
        )

    def test_key_moves_with_options(self):
        assert artifact_key(SIMPLE, CompilationOptions()) != artifact_key(
            SIMPLE, CompilationOptions(promotion="aggressive")
        )
        assert artifact_key(SIMPLE, CompilationOptions()) != artifact_key(
            SIMPLE, CompilationOptions(scheme="conventional")
        )

    def test_fingerprint_covers_machine(self):
        from repro.ir.instructions import MachineConfig

        small = CompilationOptions(machine=MachineConfig(num_regs=8,
                                                         num_caller_saved=4))
        assert options_fingerprint(small) != options_fingerprint(
            CompilationOptions()
        )


class TestArtifactCache:
    def test_cold_then_warm(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        first = cache.resolve("simple", SIMPLE)
        assert (cache.hits, cache.misses) == (0, 1)
        assert not first.from_cache
        second = cache.resolve("simple", SIMPLE)
        assert (cache.hits, cache.misses) == (1, 1)
        assert second.from_cache
        assert second.output == first.output
        assert second.steps == first.steps
        assert list(second.trace) == list(first.trace)

    def test_warm_program_replays_identically(self, tmp_path):
        from repro.vm.memory import RecordingMemory

        cache = ArtifactCache(str(tmp_path))
        cache.resolve("simple", SIMPLE)
        warm = cache.resolve("simple", SIMPLE)
        memory = RecordingMemory()
        result = warm.program.run(memory=memory)
        assert tuple(result.output) == warm.output
        assert result.steps == warm.steps
        assert list(memory.buffer) == list(warm.trace)

    def test_distinct_options_distinct_entries(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.resolve("simple", SIMPLE, CompilationOptions())
        cache.resolve(
            "simple", SIMPLE, CompilationOptions(promotion="aggressive")
        )
        assert cache.misses == 2

    def test_corrupt_program_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        artifact = cache.resolve("simple", SIMPLE)
        entry = cache._entry_dir(artifact.key)
        with open(os.path.join(entry, "program.pkl"), "wb") as handle:
            handle.write(b"not a pickle")
        repaired = cache.resolve("simple", SIMPLE)
        assert cache.misses == 2
        assert repaired.output == artifact.output
        # The corrupt entry was quarantined (never re-read on the next
        # lookup) and the recompute stored a fresh copy, so the third
        # resolve is a clean hit.
        assert cache.quarantined == 1
        assert [key for key, _ in cache.quarantine_entries()] == [
            artifact.key
        ]
        third = cache.resolve("simple", SIMPLE)
        assert third.output == artifact.output
        assert cache.hits == 1

    def test_corrupt_trace_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        artifact = cache.resolve("simple", SIMPLE)
        entry = cache._entry_dir(artifact.key)
        with open(os.path.join(entry, "trace.bin"), "r+b") as handle:
            handle.truncate(10)
        cache.resolve("simple", SIMPLE)
        assert cache.misses == 2

    def test_corrupt_meta_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        artifact = cache.resolve("simple", SIMPLE)
        entry = cache._entry_dir(artifact.key)
        with open(os.path.join(entry, "meta.json"), "w") as handle:
            handle.write("{ truncated")
        cache.resolve("simple", SIMPLE)
        assert cache.misses == 2

    def test_meta_event_count_checked(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        artifact = cache.resolve("simple", SIMPLE)
        entry = cache._entry_dir(artifact.key)
        meta_path = os.path.join(entry, "meta.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        meta["events"] += 1
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)
        cache.resolve("simple", SIMPLE)
        assert cache.misses == 2

    def test_expected_output_mismatch_raises(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        with pytest.raises(VMError, match="instead of"):
            cache.resolve("simple", SIMPLE, expected_output=(999,))
        # ... on the warm path too.
        cache.resolve("simple", SIMPLE)
        with pytest.raises(VMError, match="instead of"):
            cache.resolve("simple", SIMPLE, expected_output=(999,))

    def test_clear(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.resolve("simple", SIMPLE)
        cache.clear()
        cache.resolve("simple", SIMPLE)
        assert cache.misses == 2

    def test_benchmark_resolution_matches_direct_run(self, tmp_path):
        bench = get_benchmark("sieve")
        cache = ArtifactCache(str(tmp_path))
        artifact = cache.resolve(
            bench.name, bench.source, expected_output=bench.expected_output
        )
        assert artifact.output == bench.expected_output
        warm = cache.resolve(
            bench.name, bench.source, expected_output=bench.expected_output
        )
        assert warm.from_cache
        assert list(warm.trace) == list(artifact.trace)
        assert warm.program.static.rows() == artifact.program.static.rows()
