"""VM tests against hand-built modules: error paths and edge cases the
MiniC frontend cannot produce."""

import pytest

from repro.lang.errors import VMError
from repro.lang.parser import parse_program
from repro.lang.sema import analyze
from repro.ir.builder import build_module
from repro.ir.cfg import build_cfg
from repro.ir.instructions import (
    BinOp,
    Call,
    CJump,
    Imm,
    Jump,
    Load,
    Move,
    PReg,
    Print,
    RefClass,
    RefFlavor,
    RefInfo,
    RegionKind,
    RegMem,
    Ret,
    Store,
    SymMem,
    UnOp,
)
from repro.vm.machine import Machine


def empty_module():
    return build_module(analyze(parse_program("int g;")))


def make_function(module, name, build):
    """Create a function whose entry block is filled by ``build``."""
    from repro.ir.function import IRFunction
    from repro.lang.types import INT

    function = IRFunction(name, None, [], INT)
    block = function.new_block("entry")
    build(function, block)
    module.add_function(function)
    build_cfg(function)
    return function


def plain_ref():
    ref = RefInfo("t", RegionKind.DIRECT)
    ref.ref_class = RefClass.UNAMBIGUOUS
    ref.flavor = RefFlavor.AM_LOAD
    return ref


class TestErrorPaths:
    def test_call_to_unknown_function(self):
        module = empty_module()

        def build(function, block):
            block.append(Call("missing", 0, False))
            block.append(Move(PReg(0), Imm(0)))
            block.append(Ret(True))

        make_function(module, "main", build)
        with pytest.raises(VMError, match="unknown function"):
            Machine(module).run()

    def test_wild_load_address(self):
        module = empty_module()

        def build(function, block):
            block.append(Move(PReg(1), Imm(3)))  # below GLOBAL_BASE
            block.append(Load(PReg(0), RegMem(PReg(1)), plain_ref()))
            block.append(Ret(True))

        make_function(module, "main", build)
        with pytest.raises(VMError, match="wild memory access"):
            Machine(module).run()

    def test_wild_store_address(self):
        module = empty_module()

        def build(function, block):
            block.append(Move(PReg(1), Imm(1 << 30)))  # above stack base
            block.append(Store(RegMem(PReg(1)), Imm(7), plain_ref()))
            block.append(Move(PReg(0), Imm(0)))
            block.append(Ret(True))

        make_function(module, "main", build)
        with pytest.raises(VMError, match="wild memory access"):
            Machine(module).run()

    def test_missing_entry_function(self):
        module = empty_module()
        with pytest.raises(VMError, match="no function named"):
            Machine(module).run("nothere")

    def test_set_global_on_non_array(self):
        module = empty_module()

        def build(function, block):
            block.append(Move(PReg(0), Imm(0)))
            block.append(Ret(True))

        make_function(module, "main", build)
        vm = Machine(module)
        with pytest.raises(VMError):
            vm.set_global("g", 1, index=0)
        with pytest.raises(VMError):
            vm.set_global("missing", 1)

    def test_array_index_out_of_range(self):
        source = "int a[4]; int main() { return 0; }"
        module = build_module(analyze(parse_program(source)))
        for function in module.functions.values():
            build_cfg(function)
        from repro.unified.pipeline import CompilationOptions, compile_source

        program = compile_source(source, CompilationOptions())
        vm = program.machine()
        with pytest.raises(VMError):
            vm.set_global("a", 1, index=99)


class TestOperandForms:
    def test_print_immediate(self):
        module = empty_module()

        def build(function, block):
            block.append(Print(Imm(42)))
            block.append(Move(PReg(0), Imm(0)))
            block.append(Ret(True))

        make_function(module, "main", build)
        result = Machine(module).run()
        assert result.output == [42]

    def test_cjump_immediate_condition(self):
        module = empty_module()

        def build(function, block):
            taken = function.new_block("taken")
            skipped = function.new_block("skipped")
            block.append(CJump(Imm(1), taken.name, skipped.name))
            taken.append(Print(Imm(1)))
            taken.append(Move(PReg(0), Imm(0)))
            taken.append(Ret(True))
            skipped.append(Print(Imm(2)))
            skipped.append(Move(PReg(0), Imm(0)))
            skipped.append(Ret(True))

        make_function(module, "main", build)
        result = Machine(module).run()
        assert result.output == [1]

    def test_binop_two_immediates(self):
        module = empty_module()

        def build(function, block):
            block.append(BinOp(PReg(0), "mul", Imm(6), Imm(7)))
            block.append(Print(PReg(0)))
            block.append(Ret(True))

        make_function(module, "main", build)
        assert Machine(module).run().output == [42]

    def test_unop_immediate(self):
        module = empty_module()

        def build(function, block):
            block.append(UnOp(PReg(0), "neg", Imm(5)))
            block.append(Print(PReg(0)))
            block.append(UnOp(PReg(0), "not", Imm(0)))
            block.append(Print(PReg(0)))
            block.append(Ret(True))

        make_function(module, "main", build)
        assert Machine(module).run().output == [-5, 1]

    def test_jump_loop_with_budget(self):
        module = empty_module()

        def build(function, block):
            spin = function.new_block("spin")
            block.append(Jump(spin.name))
            spin.append(Jump(spin.name))

        make_function(module, "main", build)
        with pytest.raises(VMError, match="exceeded"):
            Machine(module, max_steps=1000).run()

    def test_registers_persist_across_runs(self):
        module = empty_module()

        def build(function, block):
            block.append(Move(PReg(0), Imm(7)))
            block.append(Ret(True))

        make_function(module, "main", build)
        vm = Machine(module)
        assert vm.run().return_value == 7

    def test_symmem_global_addressing(self):
        source = "int g = 5; int main() { return g; }"
        from repro.unified.pipeline import CompilationOptions, compile_source

        program = compile_source(source, CompilationOptions(promotion="none"))
        vm = program.machine()
        assert vm.get_global("g") == 5
        result = vm.run()
        assert result.return_value == 5
