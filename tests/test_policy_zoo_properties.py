"""Property-based tests (hypothesis) for the predictive policy zoo.

Three properties pin the zoo's mechanics to their definitions:

1. **SRRIP MRU safety** — promotion-on-hit means the block touched by
   the previous access to a set is never the victim of the next
   eviction in that set (associativity >= 2): its RRPV is 0 and the
   LRU tie-break protects it even after aging saturates every line.
2. **DRRIP leader purity** — a leader set's state depends only on its
   own access subsequence, so the dueling monitor's per-leader hit
   counts equal a standalone SRRIP (or BRRIP) replay of the whole
   trace, read off at the leader set.
3. **OPTgen == MIN** — Hawkeye's shadow oracle is the incremental MIN
   next-use machinery re-used verbatim, so its hit count on a
   single-set trace equals :func:`simulate_min` exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.belady import simulate_min
from repro.cache.cache import CacheConfig
from repro.cache.replay import policy_for_trace
from repro.cache.semantics import (
    SRRIPPolicy,
    UnifiedCache,
    make_policy,
)
from repro.vm.trace import FLAG_WRITE, TraceBuffer

# ----------------------------------------------------------------------
# Strategies.
# ----------------------------------------------------------------------

#: Plain read/write streams over a small address window — enough to
#: thrash a tiny cache without bypass/kill noise.
plain_refs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=23),
        st.booleans(),
    ),
    min_size=1,
    max_size=200,
)


def make_trace(refs):
    trace = TraceBuffer()
    for address, is_write in refs:
        trace.append(address, FLAG_WRITE if is_write else 0)
    return trace


def drive(core, trace):
    for index, (address, flags) in enumerate(trace):
        core.access(address, bool(flags & FLAG_WRITE), False, False,
                    index=index)


# ----------------------------------------------------------------------
# Property 1: SRRIP promotion-on-hit protects the MRU block.
# ----------------------------------------------------------------------


class _RecordingSRRIP(SRRIPPolicy):
    __slots__ = ("evictions",)

    def reset(self, config):
        super().reset(config)
        self.evictions = []

    def evict(self, set_index):
        block, victim = super().evict(set_index)
        self.evictions.append((set_index, block))
        return block, victim


@settings(max_examples=80, deadline=None)
@given(
    refs=plain_refs,
    geometry=st.sampled_from(
        [dict(size_words=4, associativity=2),
         dict(size_words=8, associativity=2),
         dict(size_words=8, associativity=4)]
    ),
)
def test_srrip_never_evicts_the_mru_block(refs, geometry):
    config = CacheConfig(line_words=1, policy="srrip", **geometry)
    policy = _RecordingSRRIP()
    core = UnifiedCache(config, policy=policy)
    # set index -> block, present only when the previous access to
    # that set was a hit (the promotion holds for exactly one access:
    # afterwards aging may legitimately reach the block again).
    promoted = {}
    seen = 0
    for address, is_write in refs:
        block = address  # line_words == 1
        set_index = block % config.num_sets
        hit = policy.lookup(set_index, block) is not None
        core.access(address, is_write, False, False)
        for evicted_set, victim in policy.evictions[seen:]:
            assert evicted_set == set_index
            if evicted_set in promoted:
                assert victim != promoted[evicted_set], (
                    "evicted the hit-promoted MRU block", refs)
        seen = len(policy.evictions)
        if hit:
            promoted[set_index] = block
        else:
            promoted.pop(set_index, None)


# ----------------------------------------------------------------------
# Property 2: DRRIP leader sets replay standalone.
# ----------------------------------------------------------------------


def per_set_hits(trace, config):
    """Hit counts per set for ``config``, via a side-effect-free
    pre-lookup before every access."""
    core = UnifiedCache(config, policy=policy_for_trace(trace, config))
    hits = {}
    for index, (address, flags) in enumerate(trace):
        block = address // config.line_words
        set_index = block % config.num_sets
        if core.policy.lookup(set_index, block) is not None:
            hits[set_index] = hits.get(set_index, 0) + 1
        core.access(address, bool(flags & FLAG_WRITE), False, False,
                    index=index)
    return hits


@settings(max_examples=60, deadline=None)
@given(refs=plain_refs)
def test_drrip_monitor_equals_standalone_replays(refs):
    # 8 words, 2-way -> 4 sets; leaders: set 0 (srrip), set 2 (brrip).
    geometry = dict(size_words=8, line_words=1, associativity=2)
    trace = make_trace(refs)
    drrip = UnifiedCache(CacheConfig(policy="drrip", **geometry))
    drive(drrip, trace)
    monitor = drrip.policy.monitor
    srrip_hits = per_set_hits(trace, CacheConfig(policy="srrip", **geometry))
    brrip_hits = per_set_hits(trace, CacheConfig(policy="brrip", **geometry))
    assert monitor["srrip"].get(0, 0) == srrip_hits.get(0, 0)
    assert monitor["brrip"].get(2, 0) == brrip_hits.get(2, 0)


# ----------------------------------------------------------------------
# Property 3: Hawkeye's OPTgen agrees with the MIN simulator.
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    refs=plain_refs,
    associativity=st.sampled_from([1, 2, 4]),
)
def test_hawkeye_optgen_matches_min(refs, associativity):
    # One set: the whole cache is a single fully-associative set, so
    # OPTgen's per-set shadow is exactly the MIN simulation.
    config = CacheConfig(
        size_words=associativity, line_words=1,
        associativity=associativity, policy="hawkeye",
    )
    trace = make_trace(refs)
    policy = policy_for_trace(trace, config)
    core = UnifiedCache(config, policy=policy)
    drive(core, trace)
    min_stats = simulate_min(
        trace,
        CacheConfig(size_words=associativity, line_words=1,
                    associativity=associativity),
    )
    assert policy.optgen_refs == min_stats.hits + min_stats.misses
    assert policy.optgen_hits == min_stats.hits
