"""The crash-safe, bounded artifact store under injected hostility.

Every failure class the store claims to survive is exercised here with
deterministic fault plans: torn writes never publish a partial entry,
bit flips are caught by checksums and quarantined with a recorded
reason, ``ENOSPC`` on store degrades to a counted miss, ``EIO`` on
load degrades to a recompute without condemning the entry, the byte
budget evicts through the repo's own replacement policies, and two
processes racing store/load/gc on the same keys (with the
``store_pause`` injection widening the window) always observe correct
artifacts — never a torn one.
"""

import hashlib
import json
import os
import time

import pytest

from repro import faultinject
from repro.evalharness.artifacts import (
    ARTIFACT_SCHEMA,
    CAPACITY_ENV,
    POLICY_ENV,
    ArtifactCache,
    artifact_key,
    parse_size,
)
from repro.evalharness.artifacts_cli import main as artifacts_main
from repro.evalharness.parallel import pool_map
from repro.unified.pipeline import CompilationOptions


@pytest.fixture(autouse=True)
def _mask_ambient_fault_plan():
    # Exact-counter tests; each test opens its own plan when it wants
    # faults, which overrides this mask for its dynamic extent.
    with faultinject.fault_plan(None):
        yield


def program_printing(value):
    """A tiny MiniC program whose only output is ``value``."""
    return (
        "int main() {{\n"
        "    int values[4];\n"
        "    int i;\n"
        "    for (i = 0; i < 4; i++) {{ values[i] = i + {0}; }}\n"
        "    print(values[3]);\n"
        "    return 0;\n"
        "}}\n"
    ).format(value)


SIMPLE = program_printing(10)
EXPECTED = (13,)


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(str(tmp_path / "store"))


def entry_dir(cache, source):
    key = artifact_key(source, CompilationOptions().normalized())
    return key, os.path.join(cache.root, key[:2], key)


class TestIntegrityMetadata:
    def test_meta_records_payload_checksums(self, cache):
        cache.resolve("simple", SIMPLE)
        key, entry = entry_dir(cache, SIMPLE)
        with open(os.path.join(entry, "meta.json")) as handle:
            meta = json.load(handle)
        assert meta["schema"] == ARTIFACT_SCHEMA
        assert meta["stored_at"] > 0
        for filename in ("program.pkl", "trace.bin"):
            with open(os.path.join(entry, filename), "rb") as handle:
                digest = hashlib.sha256(handle.read()).hexdigest()
            assert meta["checksums"][filename] == digest

    def test_poisoned_pickle_never_deserialized(self, cache):
        # A tampered program.pkl must be rejected by checksum before
        # pickle.loads ever sees it: plant a pickle that would raise
        # if executed.
        cache.resolve("simple", SIMPLE)
        _key, entry = entry_dir(cache, SIMPLE)
        with open(os.path.join(entry, "program.pkl"), "wb") as handle:
            handle.write(
                b"cos\nsystem\n(S'exit 99'\ntR."  # classic pickle bomb
            )
        artifact = cache.resolve("simple", SIMPLE)
        assert artifact.output == EXPECTED
        assert cache.quarantined == 1


class TestInjectedStoreFaults:
    def test_bitflip_quarantines_with_reason(self, cache):
        first = cache.resolve("simple", SIMPLE)
        with faultinject.fault_plan("seed=3,bitflip=1.0") as plan:
            flipped = cache.resolve("simple", SIMPLE)
            assert plan.fired.get("bitflip") == 1
        assert flipped.output == first.output
        assert cache.quarantined == 1
        entries = cache.quarantine_entries()
        assert [key for key, _ in entries] == [first.key]
        with open(os.path.join(entries[0][1], "reason.json")) as handle:
            reason = json.load(handle)
        assert reason["key"] == first.key
        assert "checksum mismatch" in reason["reason"]
        # The recompute stored a clean copy: next lookup is a hit.
        assert cache.resolve("simple", SIMPLE).from_cache
        assert cache.hits == 1

    def test_torn_write_never_publishes_partial(self, cache):
        with faultinject.fault_plan("seed=3,torn_write=1.0") as plan:
            stored = cache.resolve("simple", SIMPLE)
            assert plan.fired.get("torn_write", 0) >= 1
        # The resolve itself still returned the computed artifact.
        assert stored.output == EXPECTED
        # Whatever the torn write left on disk fails verification and
        # is quarantined — it is never served as a hit.
        checked, bad = cache.verify()
        assert checked == 1
        assert len(bad) == 1
        second = cache.resolve("simple", SIMPLE)
        assert second.output == EXPECTED
        assert not second.from_cache
        third = cache.resolve("simple", SIMPLE)
        assert third.from_cache and third.output == EXPECTED

    def test_store_enospc_swallowed_and_counted(self, cache):
        with faultinject.fault_plan("seed=2,store_oserror=1.0"):
            first = cache.resolve("simple", SIMPLE)
            assert first.output == EXPECTED
            assert cache.store_errors == 1
            assert list(cache.entries()) == []
            # The injected fault is transient (limit=1): the next store
            # in the same plan succeeds.
            second = cache.resolve("simple", SIMPLE)
            assert not second.from_cache
            third = cache.resolve("simple", SIMPLE)
            assert third.from_cache
        assert (cache.hits, cache.misses) == (1, 2)

    def test_load_eio_degrades_to_miss_without_condemning(self, cache):
        cache.resolve("simple", SIMPLE)
        with faultinject.fault_plan("seed=2,load_oserror=1.0"):
            degraded = cache.resolve("simple", SIMPLE)
            assert degraded.output == EXPECTED
            assert cache.quarantined == 0
            # The entry survived; the next load (past the limit) hits.
            assert cache.resolve("simple", SIMPLE).from_cache


class TestBoundedCapacity:
    def _fill(self, cache, count=3):
        keys = []
        for index in range(count):
            artifact = cache.resolve(
                "p{}".format(index), program_printing(index)
            )
            keys.append(artifact.key)
        return keys

    def _stamp(self, cache, key, when):
        entry = os.path.join(cache.root, key[:2], key)
        os.utime(os.path.join(entry, "stamp"), (when, when))

    def test_lru_evicts_least_recently_used(self, cache):
        keys = self._fill(cache)
        # Make key 1 the cold one, key 0 the hottest.
        self._stamp(cache, keys[0], 3000)
        self._stamp(cache, keys[1], 1000)
        self._stamp(cache, keys[2], 2000)
        total = sum(cache.entry_size(e) for _, e in cache.entries())
        cache.capacity_bytes = total - 1
        _removed, evicted = cache.gc()
        assert evicted == 1
        remaining = {key for key, _ in cache.entries()}
        assert keys[1] not in remaining
        assert keys[0] in remaining and keys[2] in remaining

    def test_fifo_evicts_oldest_store(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "store"), policy="fifo")
        keys = self._fill(cache)
        # Rewrite stored_at so key 2 is the oldest store, then touch
        # its stamp to prove FIFO ignores recency of access.
        for key, when in zip(keys, (3000, 2000, 1000)):
            entry = os.path.join(cache.root, key[:2], key)
            meta_path = os.path.join(entry, "meta.json")
            with open(meta_path) as handle:
                meta = json.load(handle)
            meta["stored_at"] = when
            with open(meta_path, "w") as handle:
                json.dump(meta, handle)
        self._stamp(cache, keys[2], time.time())
        total = sum(cache.entry_size(e) for _, e in cache.entries())
        cache.capacity_bytes = total - 1
        _removed, evicted = cache.gc()
        assert evicted == 1
        assert keys[2] not in {key for key, _ in cache.entries()}

    def test_budget_enforced_after_store(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "store"))
        self._fill(cache, count=1)
        size = sum(cache.entry_size(e) for _, e in cache.entries())
        cache.capacity_bytes = int(size * 1.5)
        self._fill(cache, count=3)
        # Every store re-enforced the budget: at most one entry fits.
        assert len(list(cache.entries())) == 1
        assert cache.evicted >= 2

    def test_parse_size(self):
        assert parse_size(None) is None
        assert parse_size(4096) == 4096
        assert parse_size("64") == 64
        assert parse_size("2k") == 2048
        assert parse_size("1.5M") == int(1.5 * (1 << 20))
        assert parse_size("1G") == 1 << 30

    def test_env_budget_and_policy(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CAPACITY_ENV, "2K")
        monkeypatch.setenv(POLICY_ENV, "fifo")
        cache = ArtifactCache(str(tmp_path / "store"))
        assert cache.capacity_bytes == 2048
        assert cache.policy == "fifo"


class TestMaintenance:
    def test_gc_reaps_only_stale_staging(self, cache):
        cache.resolve("simple", SIMPLE)
        key, _entry = entry_dir(cache, SIMPLE)
        shard = os.path.join(cache.root, key[:2])
        stale = os.path.join(shard, ".staging-stale")
        fresh = os.path.join(shard, ".staging-fresh")
        os.makedirs(stale)
        os.makedirs(fresh)
        os.utime(stale, (1, 1))
        removed, _evicted = cache.gc(max_staging_age=3600)
        assert removed == 1
        assert not os.path.isdir(stale)
        assert os.path.isdir(fresh)

    def test_verify_quarantines_manual_corruption(self, cache):
        artifact = cache.resolve("simple", SIMPLE)
        _key, entry = entry_dir(cache, SIMPLE)
        trace_path = os.path.join(entry, "trace.bin")
        with open(trace_path, "r+b") as handle:
            handle.seek(5)
            byte = handle.read(1)
            handle.seek(5)
            handle.write(bytes([byte[0] ^ 0xFF]))
        checked, bad = cache.verify()
        assert checked == 1
        assert bad == [(artifact.key, "trace.bin: checksum mismatch")]
        assert list(cache.entries()) == []
        assert [key for key, _ in cache.quarantine_entries()] == [
            artifact.key
        ]
        assert cache.quarantine_clear() == 1
        assert cache.quarantine_entries() == []

    def test_stats_snapshot(self, cache):
        cache.resolve("simple", SIMPLE)
        cache.resolve("simple", SIMPLE)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["session"]["hits"] == 1
        assert stats["session"]["misses"] == 1


class TestArtifactsCLI:
    def test_stats_and_json(self, cache, capsys):
        cache.resolve("simple", SIMPLE)
        assert artifacts_main(["--root", cache.root, "stats"]) == 0
        plain = capsys.readouterr().out
        assert "entries          1" in plain
        assert artifacts_main(["--root", cache.root, "stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1

    def test_verify_exit_codes(self, cache, capsys):
        cache.resolve("simple", SIMPLE)
        assert artifacts_main(["--root", cache.root, "verify"]) == 0
        assert "all entries intact" in capsys.readouterr().out
        _key, entry = entry_dir(cache, SIMPLE)
        with open(os.path.join(entry, "trace.bin"), "ab") as handle:
            handle.write(b"garbage")
        assert artifacts_main(["--root", cache.root, "verify"]) == 1
        out = capsys.readouterr().out
        assert "quarantined" in out

    def test_gc_with_budget(self, cache, capsys):
        for index in range(3):
            cache.resolve("p{}".format(index), program_printing(index))
        assert artifacts_main(
            ["--root", cache.root, "--budget", "1", "gc"]
        ) == 0
        out = capsys.readouterr().out
        assert "evicted 3 entries" in out

    def test_quarantine_ls_and_clear(self, cache, capsys):
        cache.resolve("simple", SIMPLE)
        _key, entry = entry_dir(cache, SIMPLE)
        with open(os.path.join(entry, "meta.json"), "w") as handle:
            handle.write("{broken")
        cache.resolve("simple", SIMPLE)  # quarantines the broken entry
        key, _entry = entry_dir(cache, SIMPLE)
        assert artifacts_main(
            ["--root", cache.root, "quarantine", "ls"]
        ) == 0
        assert key[:16] in capsys.readouterr().out
        assert artifacts_main(
            ["--root", cache.root, "quarantine", "clear"]
        ) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert artifacts_main(
            ["--root", cache.root, "quarantine", "ls"]
        ) == 0
        assert "quarantine is empty" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Satellite: two processes racing store/load/gc on the same keys.
# ----------------------------------------------------------------------


def _race_worker(payload):
    """One racing process: resolve a shared key list, gc aggressively.

    The ``store_pause`` injection stalls every store between staging
    and publish, so both processes sit inside the store window at the
    same time while the other's ``gc(max_staging_age=0)`` tries to
    sweep staging directories from under them.  The contract under
    test: every resolve returns the correct output, no matter who wins
    any race.
    """
    root, sources, seed = payload
    plan = "seed={},store_pause=1.0,limit=8,stall_seconds=0.05".format(seed)
    outputs = []
    with faultinject.fault_plan(plan):
        cache = ArtifactCache(root)
        for round_no, source in enumerate(sources):
            artifact = cache.resolve("race", source)
            outputs.append(tuple(artifact.output))
            if round_no % 2 == 1:
                cache.gc(max_staging_age=0.0)
    return outputs


class TestConcurrentAccess:
    def test_two_processes_racing_store_load_gc(self, tmp_path):
        root = str(tmp_path / "shared-store")
        sources = [program_printing(value) for value in (1, 2, 3)]
        expected = [(value + 3,) for value in (1, 2, 3)]
        results = pool_map(
            _race_worker,
            [(root, sources, 21), (root, sources, 22)],
            jobs=2,
        )
        for outputs in results:
            assert outputs == expected
        # Nothing torn was ever published: every surviving entry
        # passes verification, and a fresh reader sees correct data.
        reader = ArtifactCache(root)
        _checked, bad = reader.verify()
        assert bad == []
        for source, output in zip(sources, expected):
            assert reader.resolve("race", source).output == output
