"""Robustness-layer throughput: the fuzz loop must stay cheap enough
to run hundreds of programs in CI, and the fault-injection hooks must
be ~free when no plan is active.

Timings land in ``BENCH_robustness.json`` (written by the conftest
hook, which also picks up ``record_property`` metrics) so the cost
trajectory of generation, the differential battery, delta-debugging
and the fault-path overhead accumulates across revisions.
"""

import time

import pytest

from repro import faultinject
from repro.errors import FaultInjected
from repro.evalharness.artifacts import ArtifactCache
from repro.evalharness.parallel import Journal
from repro.robustness.differential import check_source
from repro.robustness.generator import generate_program
from repro.robustness.reducer import reduce_source
from repro.unified.pipeline import compile_source


def test_generate_programs(benchmark):
    def generate_batch():
        return [generate_program(seed) for seed in range(20)]

    programs = benchmark(generate_batch)
    assert len(programs) == 20
    benchmark.extra_info["avg_lines"] = sum(
        p.line_count for p in programs
    ) / len(programs)


def test_differential_battery(benchmark):
    generated = generate_program(0)
    info = benchmark(
        check_source,
        generated.source,
        generated.expected_output,
        generated.expected_return,
    )
    assert info["configs"] == 8
    benchmark.extra_info["trace_events"] = info["trace_events"]


def test_reduce_injected_failure(benchmark):
    generated = generate_program(7)

    def predicate(candidate):
        if "print(" not in candidate:
            return False
        try:
            compile_source(candidate)
        except Exception:
            return False
        return True

    reduced = benchmark(reduce_source, generated.source, predicate)
    assert len(reduced.splitlines()) <= 15
    benchmark.extra_info["reduced_lines"] = len(reduced.splitlines())


def test_fuel_check_overhead(benchmark):
    """The per-step fuel check must not tax healthy programs."""
    program = compile_source(
        "int main() { int i; int s; s = 0;"
        " for (i = 0; i < 5000; i = i + 1) { s = s + i; }"
        " return s; }"
    )
    result = benchmark(program.run, max_steps=10_000_000)
    assert result.return_value == 12497500


_PROBE_SOURCE = (
    "int main() {\n"
    "    int values[16];\n"
    "    int i;\n"
    "    for (i = 0; i < 16; i++) { values[i] = i * 3; }\n"
    "    print(values[5] + values[11]);\n"
    "    return 0;\n"
    "}\n"
)


def test_fault_hook_disabled_overhead(benchmark, tmp_path,
                                      record_property):
    """With no active plan, an injection site must be ~free.

    The warm artifact hit path crosses three sites (one
    ``load_oserror`` decision, two ``bitflip`` payload checks); their
    estimated share of a warm hit must stay under the 5% overhead
    budget the hardening work promised.
    """
    with faultinject.fault_plan(None):
        cache = ArtifactCache(str(tmp_path / "store"))
        cache.resolve("probe", _PROBE_SOURCE)

        def warm_hit():
            artifact = cache.resolve("probe", _PROBE_SOURCE)
            assert artifact.from_cache
            return artifact

        benchmark(warm_hit)
        rounds = 20000
        start = time.perf_counter()
        for _ in range(rounds):
            faultinject.should_fire("bitflip", "probe")
        per_hook = (time.perf_counter() - start) / rounds
        start = time.perf_counter()
        for _ in range(50):
            warm_hit()
        per_resolve = (time.perf_counter() - start) / 50
    fraction = 3 * per_hook / per_resolve
    record_property("per_hook_ns", round(per_hook * 1e9, 1))
    record_property("hook_fraction_of_warm_hit", round(fraction, 6))
    assert fraction < 0.05


def test_fault_decision_stream(benchmark):
    """Plan decisions are one sha256 each; keep them cheap enough for
    per-reference sites."""
    plan = faultinject.FaultPlan(rates={"bitflip": 0.5}, seed=7, limit=10**9)

    def decide_batch():
        fired = 0
        for index in range(2000):
            if plan.should("bitflip", "key", index=index):
                fired += 1
        return fired

    fired = benchmark(decide_batch)
    assert 800 < fired < 1200  # rate 0.5 over 2000 seeded decisions


def test_journal_checkpoint_throughput(benchmark, tmp_path,
                                       record_property):
    """Journal appends fsync per checkpoint; the cost must stay small
    next to a unit evaluation (~hundreds of ms)."""
    path = str(tmp_path / "journal.bin")
    outcome = ("ok", {"payload": list(range(64))})

    def write_and_reload():
        journal = Journal(path)
        for index in range(50):
            journal.record("fp-{}".format(index), outcome)
        return Journal(path)

    reloaded = benchmark(write_and_reload)
    assert len(reloaded.entries) == 50
    record_property("entries", len(reloaded.entries))


def test_supervised_retry_convergence(benchmark):
    """A transient injected failure costs one backoff sleep and one
    retry, nothing more."""
    from repro.evalharness.parallel import Supervisor, _run_one_serial

    def converge():
        sup = Supervisor(backoff_base=0.001, backoff_cap=0.002)
        state = {"calls": 0}

        def payload_for(index, attempt, in_pool):
            return (index, attempt, in_pool)

        def fake_worker(payload):
            state["calls"] += 1
            if payload[1] == 0:
                raise FaultInjected("transient")
            return "ok", payload

        import repro.evalharness.parallel as parallel

        original = parallel._unit_worker
        parallel._unit_worker = fake_worker
        try:
            outcome = _run_one_serial(
                type("U", (), {"name": "probe"})(), "fp", payload_for,
                0, sup, False, "bench",
            )
        finally:
            parallel._unit_worker = original
        assert outcome[0] == "ok"
        return state["calls"]

    calls = benchmark(converge)
    assert calls == 2


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "--benchmark-only"]))
