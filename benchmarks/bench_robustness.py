"""Robustness-layer throughput: the fuzz loop must stay cheap enough
to run hundreds of programs in CI.

Timings land in ``BENCH_robustness.json`` (written by the conftest
hook) so the cost trajectory of generation, the differential battery
and delta-debugging accumulates across revisions.
"""

import pytest

from repro.robustness.differential import check_source
from repro.robustness.generator import generate_program
from repro.robustness.reducer import reduce_source
from repro.unified.pipeline import compile_source


def test_generate_programs(benchmark):
    def generate_batch():
        return [generate_program(seed) for seed in range(20)]

    programs = benchmark(generate_batch)
    assert len(programs) == 20
    benchmark.extra_info["avg_lines"] = sum(
        p.line_count for p in programs
    ) / len(programs)


def test_differential_battery(benchmark):
    generated = generate_program(0)
    info = benchmark(
        check_source,
        generated.source,
        generated.expected_output,
        generated.expected_return,
    )
    assert info["configs"] == 8
    benchmark.extra_info["trace_events"] = info["trace_events"]


def test_reduce_injected_failure(benchmark):
    generated = generate_program(7)

    def predicate(candidate):
        if "print(" not in candidate:
            return False
        try:
            compile_source(candidate)
        except Exception:
            return False
        return True

    reduced = benchmark(reduce_source, generated.source, predicate)
    assert len(reduced.splitlines()) <= 15
    benchmark.extra_info["reduced_lines"] = len(reduced.splitlines())


def test_fuel_check_overhead(benchmark):
    """The per-step fuel check must not tax healthy programs."""
    program = compile_source(
        "int main() { int i; int s; s = 0;"
        " for (i = 0; i < 5000; i = i + 1) { s = s + i; }"
        " return s; }"
    )
    result = benchmark(program.run, max_steps=10_000_000)
    assert result.return_value == 12497500


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "--benchmark-only"]))
