"""Figure 5: percent of data-cache reference traffic reduction.

One bench per benchmark program.  The timed region is the trace-driven
cache simulation pair (unified + conventional); the reproduced figures
land in ``extra_info`` so ``--benchmark-json`` captures the whole
table.  Assertions pin the paper's qualitative claims: every benchmark
sees a substantial reduction, and the fleet average is about 60%.
"""

import pytest

from conftest import traced_benchmark

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace
from repro.evalharness.experiment import DEFAULT_CACHE
from repro.programs import BENCHMARK_NAMES

_BASELINE = CacheConfig(
    size_words=DEFAULT_CACHE.size_words,
    associativity=DEFAULT_CACHE.associativity,
    policy=DEFAULT_CACHE.policy,
    honor_bypass=False,
    honor_kill=False,
)

_reductions = {}


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_figure5_row(benchmark, name):
    _bench, program, trace = traced_benchmark(name)

    def simulate():
        unified = replay_trace(trace, DEFAULT_CACHE)
        conventional = replay_trace(trace, _BASELINE)
        return unified, conventional

    unified, conventional = benchmark(simulate)
    reduction = unified.cache_traffic_reduction_vs(conventional)
    _reductions[name] = reduction

    summary = trace.summary()
    dynamic_unambiguous = 100.0 * summary["unambiguous"] / summary["total"]
    benchmark.extra_info["static_percent_unambiguous"] = round(
        program.static.percent_unambiguous, 1
    )
    benchmark.extra_info["dynamic_percent_unambiguous"] = round(
        dynamic_unambiguous, 1
    )
    benchmark.extra_info["cache_traffic_reduction_percent"] = round(
        reduction, 1
    )
    benchmark.extra_info["data_refs"] = summary["total"]

    # Qualitative shape of Figure 5: every benchmark gains materially.
    assert reduction > 20.0
    # The bypassed references are the unambiguous ones.
    assert unified.refs_bypassed == summary["bypassed"]
    assert conventional.refs_cached == summary["total"]


def test_figure5_average(benchmark):
    """Fleet average: the paper's 'about 60 percent' claim."""

    def simulate_all():
        reductions = []
        for name in BENCHMARK_NAMES:
            _bench, _program, trace = traced_benchmark(name)
            unified = replay_trace(trace, DEFAULT_CACHE)
            conventional = replay_trace(trace, _BASELINE)
            reductions.append(
                unified.cache_traffic_reduction_vs(conventional)
            )
        return sum(reductions) / len(reductions)

    average = benchmark(simulate_all)
    benchmark.extra_info["average_reduction_percent"] = round(average, 1)
    assert 45.0 <= average <= 75.0
