"""The engine acceptance benchmark: serial sweep vs the
compile-once/trace-once engine, with the timing record written to
``BENCH_parallel.json``.

The sweep is the full geometry battery — every benchmark at four cache
sizes — and the claim is twofold: the engine's results are
bit-identical to the serial path, and the warm-artifact-cache engine
run beats the serial run by at least 3x wall-clock (the compile+VM
half is skipped entirely and the replay half runs through the shared
single-decode core).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q
"""

import json
import os
import platform
import tempfile
import time

from repro.cache.cache import CacheConfig
from repro.evalharness.artifacts import ArtifactCache
from repro.evalharness.experiment import evaluate_trace_multi, run_benchmark
from repro.evalharness.figure5 import figure5_options
from repro.evalharness.parallel import EvalUnit, run_units
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import compile_source
from repro.vm.memory import RecordingMemory

SWEEP_SIZES = (64, 128, 256, 512)

GEOMETRIES = tuple(
    CacheConfig(size_words=size, line_words=1, associativity=4, policy="lru")
    for size in SWEEP_SIZES
)

RECORD_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_parallel.json",
)


def _effective_cpus():
    """CPUs this process may actually run on, where the OS can say.

    ``os.cpu_count()`` reports the machine; a container or cpuset can
    pin the process to fewer, which is what the engine's ``jobs``
    setting competes against.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return None


def staged_timings(options):
    """One serial compile → trace → replay pass, timed per stage.

    Each benchmark is compiled once, traced once, and its trace scored
    against every geometry once — the minimum work the engine's
    artifact cache amortizes — so the record shows where the serial
    sweep's time actually goes.
    """
    compile_started = time.perf_counter()
    programs = {
        name: compile_source(get_benchmark(name).source, options)
        for name in BENCHMARK_NAMES
    }
    compile_seconds = time.perf_counter() - compile_started

    trace_started = time.perf_counter()
    traced = {}
    for name, program in programs.items():
        memory = RecordingMemory()
        result = program.run(memory=memory)
        traced[name] = (memory.buffer, result)
    trace_seconds = time.perf_counter() - trace_started

    replay_started = time.perf_counter()
    for name, (trace, result) in traced.items():
        evaluate_trace_multi(
            name, programs[name], trace, result.output, result.steps,
            GEOMETRIES,
        )
    replay_seconds = time.perf_counter() - replay_started
    return {
        "compile_seconds": round(compile_seconds, 3),
        "trace_seconds": round(trace_seconds, 3),
        "replay_seconds": round(replay_seconds, 3),
    }


def canonical(result):
    return {
        "unified": result.unified_stats.as_dict(),
        "conventional": result.conventional_stats.as_dict(),
        "dynamic": dict(result.dynamic),
        "steps": result.steps,
        "static_bypass_checked": result.static_bypass_checked,
    }


def test_engine_speedup_and_equivalence():
    options = figure5_options()

    serial_started = time.perf_counter()
    serial = {}
    for name in BENCHMARK_NAMES:
        for geometry in GEOMETRIES:
            serial[(name, geometry.size_words)] = run_benchmark(
                name, options=options, cache_config=geometry
            )
    serial_seconds = time.perf_counter() - serial_started

    units = [
        EvalUnit(name=name, options=options, cache_configs=GEOMETRIES)
        for name in BENCHMARK_NAMES
    ]
    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(tmp)

        cold_started = time.perf_counter()
        cold = run_units(units, jobs=4, artifact_cache=cache)
        cold_seconds = time.perf_counter() - cold_started

        warm_started = time.perf_counter()
        warm = run_units(units, jobs=4, artifact_cache=cache)
        warm_seconds = time.perf_counter() - warm_started

    for results in (cold, warm):
        for name, unit_results in zip(BENCHMARK_NAMES, results):
            for geometry, result in zip(GEOMETRIES, unit_results):
                expect = serial[(name, geometry.size_words)]
                assert canonical(result) == canonical(expect), (
                    name, geometry.size_words,
                )

    warm_speedup = serial_seconds / warm_seconds
    cold_speedup = serial_seconds / cold_seconds
    record = {
        "benchmarks": list(BENCHMARK_NAMES),
        "geometry_sizes": list(SWEEP_SIZES),
        "jobs": 4,
        "serial_seconds": round(serial_seconds, 3),
        "cold_engine_seconds": round(cold_seconds, 3),
        "warm_engine_seconds": round(warm_seconds, 3),
        "cold_speedup": round(cold_speedup, 2),
        "warm_speedup": round(warm_speedup, 2),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "effective_cpus": _effective_cpus(),
        "stages": staged_timings(options),
    }
    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert warm_speedup >= 3.0, (
        "warm engine speedup {:.2f}x is below the 3x floor "
        "(serial {:.2f}s, warm {:.2f}s)".format(
            warm_speedup, serial_seconds, warm_seconds
        )
    )
