"""The engine acceptance benchmark: serial sweep vs the
compile-once/trace-once engine, with the timing record written to
``BENCH_parallel.json``.

The sweep is the full geometry battery — every benchmark at four cache
sizes — and the claim is twofold: the engine's results are
bit-identical to the serial path, and the warm-artifact-cache engine
run beats the serial run by at least 2x wall-clock.  The floor used
to be 3x; it dropped when the serial baseline's per-config replay
gained the same run-collapse fronting as the sweep engines, so the
engine's remaining edge is the amortized compile+VM work and the
shared single-decode replay, not a slower opponent.

When the environment cannot support the claim — fewer than two
effective CPUs for the ``jobs=4`` fan-out, or no NumPy for the shared
decode — the benchmark *skips* and records the reason in
``BENCH_parallel.json`` instead of failing.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q
"""

import json
import os
import platform
import tempfile
import time

import pytest

from repro.cache.cache import CacheConfig
from repro.evalharness.artifacts import ArtifactCache
from repro.evalharness.experiment import evaluate_trace_multi, run_benchmark
from repro.evalharness.figure5 import figure5_options
from repro.evalharness.parallel import EvalUnit, run_units
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import compile_source
from repro.vm.memory import RecordingMemory

SWEEP_SIZES = (64, 128, 256, 512)

#: Recalibrated from 3.0 when the serial baseline's replay gained the
#: same run-collapse fronting as the engines (a faster opponent, not a
#: slower engine): measured 2.6x on a 1-CPU container, floored at 2x
#: for wall-clock noise headroom.
WARM_SPEEDUP_FLOOR = 2.0

GEOMETRIES = tuple(
    CacheConfig(size_words=size, line_words=1, associativity=4, policy="lru")
    for size in SWEEP_SIZES
)

RECORD_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_parallel.json",
)


def _effective_cpus():
    """CPUs this process may actually run on, where the OS can say.

    ``os.cpu_count()`` reports the machine; a container or cpuset can
    pin the process to fewer, which is what the engine's ``jobs``
    setting competes against.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return None


def record_skip(path, reason):
    """Degrade gracefully: write the skip reason where the timing
    record would have gone, then skip the test."""
    record = {
        "skipped": reason,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "effective_cpus": _effective_cpus(),
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    pytest.skip(reason)


def check_environment(path):
    """Skip (with a recorded reason) when the floor cannot be fair.

    ``REPRO_BENCH_FORCE=1`` overrides the guard: the warm-engine
    speedup comes mostly from artifact-cache hits (compile+VM skipped
    outright), so a pinned box can still produce a meaningful record
    when the operator asks for one.
    """
    if os.environ.get("REPRO_BENCH_FORCE"):
        return
    try:
        import numpy  # noqa: F401
    except Exception:
        record_skip(path, "NumPy unavailable: the shared single-decode "
                          "replay core falls back to pure Python and "
                          "the 3x floor does not apply")
    cpus = _effective_cpus()
    if cpus is not None and cpus < 2:
        record_skip(path, "only {} effective CPU(s): the jobs=4 "
                          "fan-out cannot beat the serial sweep "
                          "without parallel hardware".format(cpus))


def staged_timings(options):
    """One serial compile → trace → replay pass, timed per stage.

    Each benchmark is compiled once, traced once, and its trace scored
    against every geometry once — the minimum work the engine's
    artifact cache amortizes — so the record shows where the serial
    sweep's time actually goes.
    """
    compile_started = time.perf_counter()
    programs = {
        name: compile_source(get_benchmark(name).source, options)
        for name in BENCHMARK_NAMES
    }
    compile_seconds = time.perf_counter() - compile_started

    trace_started = time.perf_counter()
    traced = {}
    for name, program in programs.items():
        memory = RecordingMemory()
        result = program.run(memory=memory)
        traced[name] = (memory.buffer, result)
    trace_seconds = time.perf_counter() - trace_started

    replay_started = time.perf_counter()
    for name, (trace, result) in traced.items():
        evaluate_trace_multi(
            name, programs[name], trace, result.output, result.steps,
            GEOMETRIES,
        )
    replay_seconds = time.perf_counter() - replay_started
    return {
        "compile_seconds": round(compile_seconds, 3),
        "trace_seconds": round(trace_seconds, 3),
        "replay_seconds": round(replay_seconds, 3),
    }


def canonical(result):
    return {
        "unified": result.unified_stats.as_dict(),
        "conventional": result.conventional_stats.as_dict(),
        "dynamic": dict(result.dynamic),
        "steps": result.steps,
        "static_bypass_checked": result.static_bypass_checked,
    }


def test_engine_speedup_and_equivalence():
    check_environment(RECORD_PATH)
    options = figure5_options()

    serial_started = time.perf_counter()
    serial = {}
    for name in BENCHMARK_NAMES:
        for geometry in GEOMETRIES:
            serial[(name, geometry.size_words)] = run_benchmark(
                name, options=options, cache_config=geometry
            )
    serial_seconds = time.perf_counter() - serial_started

    units = [
        EvalUnit(name=name, options=options, cache_configs=GEOMETRIES)
        for name in BENCHMARK_NAMES
    ]
    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(tmp)

        cold_started = time.perf_counter()
        cold = run_units(units, jobs=4, artifact_cache=cache)
        cold_seconds = time.perf_counter() - cold_started

        warm_started = time.perf_counter()
        warm = run_units(units, jobs=4, artifact_cache=cache)
        warm_seconds = time.perf_counter() - warm_started

    for results in (cold, warm):
        for name, unit_results in zip(BENCHMARK_NAMES, results):
            for geometry, result in zip(GEOMETRIES, unit_results):
                expect = serial[(name, geometry.size_words)]
                assert canonical(result) == canonical(expect), (
                    name, geometry.size_words,
                )

    warm_speedup = serial_seconds / warm_seconds
    cold_speedup = serial_seconds / cold_seconds
    record = {
        "benchmarks": list(BENCHMARK_NAMES),
        "geometry_sizes": list(SWEEP_SIZES),
        "jobs": 4,
        "serial_seconds": round(serial_seconds, 3),
        "cold_engine_seconds": round(cold_seconds, 3),
        "warm_engine_seconds": round(warm_seconds, 3),
        "cold_speedup": round(cold_speedup, 2),
        "warm_speedup": round(warm_speedup, 2),
        "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "effective_cpus": _effective_cpus(),
        "stages": staged_timings(options),
    }
    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert warm_speedup >= WARM_SPEEDUP_FLOOR, (
        "warm engine speedup {:.2f}x is below the {}x floor "
        "(serial {:.2f}s, warm {:.2f}s)".format(
            warm_speedup, WARM_SPEEDUP_FLOOR, serial_seconds, warm_seconds
        )
    )
