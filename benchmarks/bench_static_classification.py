"""Section 5 static claim: 70-80% of static data references are
unambiguous; Section 6's Miller ratio (unambiguous:ambiguous between
1:1 and 3:1, loosened here because codegen details shift it).

The timed region is the full compilation pipeline, whose cost *is* the
static measurement.
"""

import pytest

from repro.evalharness.figure5 import figure5_options
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import compile_source

_static_percents = []


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_static_classification(benchmark, name):
    bench = get_benchmark(name)
    options = figure5_options()

    program = benchmark(compile_source, bench.source, options)
    report = program.static

    benchmark.extra_info["static_total_refs"] = report.total
    benchmark.extra_info["static_percent_unambiguous"] = round(
        report.percent_unambiguous, 1
    )
    benchmark.extra_info["miller_ratio"] = round(report.miller_ratio, 2)
    _static_percents.append(report.percent_unambiguous)

    # Paper band, loosened per-benchmark: 70-80 with +/-15 slack.
    assert 55.0 <= report.percent_unambiguous <= 95.0
    # Miller's ratio, loosened: 1:1 .. 3:1 becomes 0.8 .. 10.
    assert 0.8 <= report.miller_ratio <= 10.0


def test_static_average(benchmark):
    """Average static fraction across the suite sits in the paper band."""
    options = figure5_options()

    def compile_all():
        percents = []
        for name in BENCHMARK_NAMES:
            program = compile_source(get_benchmark(name).source, options)
            percents.append(program.static.percent_unambiguous)
        return sum(percents) / len(percents)

    average = benchmark(compile_all)
    benchmark.extra_info["average_static_percent"] = round(average, 1)
    assert 65.0 <= average <= 85.0
