"""Section 3.2's O(n) decay argument versus associativity.

"The line X would be present in cache for O(n) time units after the
last reference, where n is the number of lines in a cache associative
set."  The more associative the cache, the longer a dead line lingers
— so the benefit of dead-marking (write-backs and bus words saved)
grows with associativity.
"""

import pytest

from conftest import traced_benchmark

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace

WORKLOAD = "towers"
SIZE_WORDS = 32
ASSOCIATIVITIES = (1, 2, 4, 8)


def _pair(trace, associativity):
    on = replay_trace(
        trace,
        CacheConfig(size_words=SIZE_WORDS, associativity=associativity),
    )
    off = replay_trace(
        trace,
        CacheConfig(size_words=SIZE_WORDS, associativity=associativity,
                    honor_kill=False),
    )
    return on, off


@pytest.mark.parametrize("associativity", ASSOCIATIVITIES)
def test_kill_benefit_per_associativity(benchmark, associativity):
    _bench, _program, trace = traced_benchmark(WORKLOAD)

    on, off = benchmark(_pair, trace, associativity)
    benchmark.extra_info["associativity"] = associativity
    benchmark.extra_info["writebacks_saved"] = off.writebacks - on.writebacks
    benchmark.extra_info["bus_words_saved"] = off.bus_words - on.bus_words
    assert on.bus_words <= off.bus_words
    assert on.misses <= off.misses


def test_benefit_grows_with_associativity(benchmark):
    _bench, _program, trace = traced_benchmark(WORKLOAD)

    def sweep():
        savings = {}
        for associativity in ASSOCIATIVITIES:
            on, off = _pair(trace, associativity)
            savings[associativity] = off.writebacks - on.writebacks
        return savings

    savings = benchmark(sweep)
    benchmark.extra_info["writebacks_saved_by_assoc"] = savings
    # O(n) decay: a dead line lingers longer in a more associative
    # cache, so dead-marking saves at least as much.
    assert savings[8] >= savings[1]
    assert savings[4] >= savings[1]
