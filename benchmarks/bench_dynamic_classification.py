"""Section 5 dynamic claim: 45-75% of executed data references are
unambiguous.  The timed region is the traced VM execution (the paper's
"runtime measurement").
"""

import pytest

from conftest import compiled_benchmark

from repro.programs import BENCHMARK_NAMES
from repro.vm.memory import RecordingMemory

_dynamic_percents = []


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_dynamic_classification(benchmark, name):
    bench, program = compiled_benchmark(name)

    def trace_run():
        memory = RecordingMemory()
        result = program.run(memory=memory)
        return memory.buffer, result

    trace, result = benchmark(trace_run)
    assert tuple(result.output) == bench.expected_output
    summary = trace.summary()
    percent = 100.0 * summary["unambiguous"] / summary["total"]
    _dynamic_percents.append(percent)

    benchmark.extra_info["dynamic_refs"] = summary["total"]
    benchmark.extra_info["dynamic_percent_unambiguous"] = round(percent, 1)
    benchmark.extra_info["by_origin"] = summary["by_origin"]

    # Paper band 45-75, loosened per-benchmark by 15 points.
    assert 30.0 <= percent <= 90.0


def test_dynamic_average(benchmark):
    def collect():
        percents = []
        for name in BENCHMARK_NAMES:
            bench, program = compiled_benchmark(name)
            memory = RecordingMemory()
            program.run(memory=memory)
            summary = memory.buffer.summary()
            percents.append(
                100.0 * summary["unambiguous"] / summary["total"]
            )
        return sum(percents) / len(percents)

    average = benchmark(collect)
    benchmark.extra_info["average_dynamic_percent"] = round(average, 1)
    assert 45.0 <= average <= 75.0
