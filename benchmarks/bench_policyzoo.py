"""Replay cost of the predictive policy zoo, recorded in
``BENCH_policyzoo.json``.

The zoo must stay affordable: every predictive policy replays the
towers trace (64 words, 4-way — the geometry the E17 golden table
pins) in at most ``COST_CEILING`` times the LRU replay, best of
``ROUNDS`` rounds, asserted live.  The record carries the absolute
times, the relative costs, and each policy's miss count next to
LRU's, so the cost/accuracy frontier accumulates run over run
alongside the other BENCH records.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_policyzoo.py -q
"""

import time

import pytest

from conftest import traced_benchmark

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace

#: Towers is recursion-heavy (kill bits and reuse prediction both have
#: material work to do) and the longest of the six traces.
WORKLOAD = "towers"
CACHE_WORDS = 64

#: Everything the zoo added over the classic trio, Random included —
#: the counter RNG must not price it out of the one-pass lane either.
ZOO = ("srrip", "brrip", "drrip", "ship", "hawkeye", "random")

#: Ceiling on (policy replay time) / (LRU replay time).  Hawkeye pays
#: for a shadow MIN per access and still measures well under 2x; 3x
#: leaves room for noise without letting a quadratic regression hide.
COST_CEILING = 3.0
ROUNDS = 3


def config_for(policy):
    return CacheConfig(size_words=CACHE_WORDS, line_words=1,
                       associativity=4, policy=policy, seed=1)


def best_of(rounds, run):
    best = None
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


@pytest.mark.parametrize("policy", ZOO)
def test_zoo_replay_cost_vs_lru(policy, record_property):
    _bench, _program, trace = traced_benchmark(WORKLOAD)
    lru_config = config_for("lru")
    lru_seconds, lru_stats = best_of(
        ROUNDS, lambda: replay_trace(trace, lru_config)
    )
    config = config_for(policy)
    policy_seconds, stats = best_of(
        ROUNDS, lambda: replay_trace(trace, config)
    )
    relative = policy_seconds / lru_seconds
    record_property("events", len(trace))
    record_property("lru_seconds", round(lru_seconds, 4))
    record_property("policy_seconds", round(policy_seconds, 4))
    record_property("relative_cost", round(relative, 2))
    record_property("misses", stats.misses)
    record_property("lru_misses", lru_stats.misses)
    assert relative <= COST_CEILING, (
        "{} replay costs {:.2f}x LRU (policy {:.3f}s, LRU {:.3f}s), "
        "over the {}x ceiling".format(
            policy, relative, policy_seconds, lru_seconds, COST_CEILING
        )
    )
