"""Section 3.1/3.2: what the last-reference (kill) bit buys.

The paper's argument: without dead-marking, a dead line lingers for
O(associativity) references before LRU decay evicts it (about 1/r of
the cells wasted for r-use values), and dead dirty lines cost pointless
write-backs.  Small caches make the effect visible in miss counts;
write-back elimination shows at any size.
"""

import pytest

from conftest import traced_benchmark

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace

WORKLOAD = "towers"
MODES = ("invalidate", "demote", "off")


@pytest.mark.parametrize("size", (32, 64, 128, 256))
@pytest.mark.parametrize("mode", MODES)
def test_kill_modes(benchmark, size, mode):
    _bench, _program, trace = traced_benchmark(WORKLOAD)

    def simulate():
        return replay_trace(
            trace,
            CacheConfig(
                size_words=size,
                associativity=4,
                honor_kill=mode != "off",
                kill_mode="invalidate" if mode == "off" else mode,
            ),
        )

    stats = benchmark(simulate)
    benchmark.extra_info["size_words"] = size
    benchmark.extra_info["kill_mode"] = mode
    benchmark.extra_info["misses"] = stats.misses
    benchmark.extra_info["writebacks"] = stats.writebacks
    benchmark.extra_info["dead_frees"] = (
        stats.dead_line_frees + stats.dead_drops
    )
    benchmark.extra_info["bus_words"] = stats.bus_words


def test_kill_bits_never_hurt_and_save_writebacks(benchmark):
    _bench, _program, trace = traced_benchmark(WORKLOAD)

    def simulate_pair():
        on = replay_trace(
            trace, CacheConfig(size_words=64, associativity=4)
        )
        off = replay_trace(
            trace,
            CacheConfig(size_words=64, associativity=4, honor_kill=False),
        )
        return on, off

    on, off = benchmark(simulate_pair)
    assert on.misses <= off.misses
    assert on.bus_words <= off.bus_words
    benchmark.extra_info["misses_saved"] = off.misses - on.misses
    benchmark.extra_info["bus_words_saved"] = off.bus_words - on.bus_words
