"""Section 3.2: the dead-line modification applies to LRU, FIFO,
Random, and Belady's MIN alike.  Times each policy's trace replay and
records the kill-bit benefit (write-backs avoided, dead-line frees).
"""

import pytest

from conftest import traced_benchmark

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace

#: Towers is recursion-heavy (kill bits matter: dead spill/save lines);
#: the small cache keeps capacity pressure on so the policies separate.
WORKLOAD = "towers"
CACHE_WORDS = 64
POLICIES = ("lru", "fifo", "random", "min")


@pytest.mark.parametrize("kill_bits", [True, False],
                         ids=["kill-on", "kill-off"])
@pytest.mark.parametrize("policy", POLICIES)
def test_policy_with_kill_bits(benchmark, policy, kill_bits):
    _bench, _program, trace = traced_benchmark(WORKLOAD)

    def simulate():
        if policy == "min":
            return replay_trace(
                trace, policy="min", size_words=CACHE_WORDS,
                associativity=4, honor_kill=kill_bits,
            )
        return replay_trace(
            trace,
            CacheConfig(size_words=CACHE_WORDS, associativity=4,
                        policy=policy, honor_kill=kill_bits),
        )

    stats = benchmark(simulate)
    benchmark.extra_info["misses"] = stats.misses
    benchmark.extra_info["writebacks"] = stats.writebacks
    benchmark.extra_info["dead_drops"] = stats.dead_drops
    benchmark.extra_info["bus_words"] = stats.bus_words


def test_min_is_lower_bound(benchmark):
    """MIN's misses lower-bound every online policy (both kill modes)."""
    _bench, _program, trace = traced_benchmark(WORKLOAD)

    def compare():
        results = {}
        for policy in POLICIES:
            if policy == "min":
                results[policy] = replay_trace(
                    trace, policy="min", size_words=CACHE_WORDS,
                    associativity=4,
                )
            else:
                results[policy] = replay_trace(
                    trace,
                    CacheConfig(size_words=CACHE_WORDS, associativity=4,
                                policy=policy),
                )
        return results

    results = benchmark(compare)
    for policy in ("lru", "fifo", "random"):
        assert results["min"].misses <= results[policy].misses
        benchmark.extra_info["{}_misses".format(policy)] = (
            results[policy].misses
        )
    benchmark.extra_info["min_misses"] = results["min"].misses
