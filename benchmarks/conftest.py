"""Shared infrastructure for the pytest-benchmark harness.

Compiled programs and reference traces are cached per configuration so
a full ``pytest benchmarks/ --benchmark-only`` run compiles and traces
each workload once and spends its time on what the benches measure.
"""

import json
import os
import platform
import time

import pytest

from repro.evalharness.figure5 import figure5_options
from repro.programs import get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory

_trace_cache = {}
_program_cache = {}


def options_key(options):
    return (
        str(options.scheme),
        str(options.promotion),
        options.promotion_budget,
        options.kill_bits,
        options.spill_to_cache,
    )


def compiled_benchmark(name, options=None):
    """Compile one named benchmark (cached)."""
    options = options or figure5_options()
    key = (name, options_key(options))
    if key not in _program_cache:
        bench = get_benchmark(name)
        _program_cache[key] = (
            bench,
            compile_source(bench.source, options),
        )
    return _program_cache[key]


def traced_benchmark(name, options=None):
    """Compile + execute once; returns (bench, program, trace)."""
    options = options or figure5_options()
    key = (name, options_key(options))
    if key not in _trace_cache:
        bench, program = compiled_benchmark(name, options)
        memory = RecordingMemory()
        result = program.run(memory=memory)
        assert tuple(result.output) == bench.expected_output
        _trace_cache[key] = (bench, program, memory.buffer)
    return _trace_cache[key]


#: Bench modules whose call-phase timings get their own JSON record:
#: {nodeid substring: (accumulator, output filename)}.
_timing_sinks = {
    "bench_robustness": ([], "BENCH_robustness.json"),
    "bench_staticcheck": ([], "BENCH_staticcheck.json"),
    "bench_policyzoo": ([], "BENCH_policyzoo.json"),
    "bench_multicore": ([], "BENCH_multicore.json"),
}


def pytest_runtest_logreport(report):
    """Collect call-phase durations of the tracked bench modules."""
    if report.when != "call":
        return
    for marker, (timings, _path) in _timing_sinks.items():
        if marker in report.nodeid:
            entry = {
                "test": report.nodeid.split("::")[-1],
                "seconds": round(report.duration, 4),
                "outcome": report.outcome,
            }
            # Benches publish derived metrics (e.g. the exact pass's
            # step count) via ``record_property``.
            for name, value in report.user_properties:
                entry[name] = value
            timings.append(entry)


def pytest_sessionfinish(session):
    """Emit the per-module BENCH_*.json records so each layer's cost
    trajectory accumulates alongside the other benchmark records."""
    for timings, filename in _timing_sinks.values():
        if not timings:
            continue
        record = {
            "generated_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "timings": timings,
        }
        out_path = os.path.join(str(session.config.rootdir), filename)
        with open(out_path, "w") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")


@pytest.fixture
def figure5_opts():
    return figure5_options()


@pytest.fixture
def default_options():
    return CompilationOptions()
