"""Section 4.4's claim: the bypass bit buys "speedups of total memory
access time by factors of 2 or more".

Total memory-access time is measured over *all value references* of
the program (the promotion-none reference count): references the
allocator moved into registers cost zero, cache hits one cycle, main
memory ten.  The claim holds when unambiguous values actually live in
registers (aggressive promotion); with 1989-era promotion the bypass
bit alone cannot deliver it — registers and cache are complementary,
exactly the paper's Section 6 conclusion.
"""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace
from repro.cache.timing import (
    LatencyModel,
    access_time_speedup,
    value_reference_time,
)
from repro.programs import get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory

#: Loop-dominated benchmarks where register allocation can actually
#: capture the unambiguous working set (towers cannot: its hot globals
#: are shared across calls and must stay memory-resident).
WORKLOADS = ("bubble", "queen", "sieve", "puzzle")

_traces = {}

_CONFIGS = {
    "conventional": (
        CompilationOptions(scheme="conventional", promotion="none"),
        False,
    ),
    "unified": (
        CompilationOptions(scheme="unified", promotion="aggressive"),
        True,
    ),
    # The hybrid refinement: bypass only register-boundary traffic;
    # memory-resident unambiguous values keep using the cache (with
    # kill bits).  See EXPERIMENTS.md E14.
    "hybrid": (
        CompilationOptions(scheme="unified", promotion="aggressive",
                           bypass_user_refs=False),
        True,
    ),
}


def _traces_for(name):
    """Record both systems' traces once (cached); cheap to replay."""
    if name not in _traces:
        bench = get_benchmark(name)
        recorded = {}
        for label, (options, _honor) in _CONFIGS.items():
            program = compile_source(bench.source, options)
            memory = RecordingMemory()
            result = program.run(memory=memory)
            assert tuple(result.output) == bench.expected_output
            recorded[label] = memory.buffer
        _traces[name] = recorded
    return _traces[name]


def _measure(name):
    """Replay both traces and convert to value-reference cycles."""
    recorded = _traces_for(name)
    model = LatencyModel()
    total_value_refs = len(recorded["conventional"])
    cycles = {}
    for label, (_options, honor) in _CONFIGS.items():
        stats = replay_trace(
            recorded[label],
            CacheConfig(honor_bypass=honor, honor_kill=honor),
        )
        refs_in_registers = total_value_refs - len(recorded[label])
        cycles[label] = value_reference_time(
            stats, refs_in_registers, model
        )
    return cycles


@pytest.mark.parametrize("name", WORKLOADS)
def test_access_time_speedup(benchmark, name):
    cycles = benchmark(_measure, name)
    speedup = access_time_speedup(
        cycles["conventional"], cycles["unified"]
    )
    benchmark.extra_info["conventional_cycles"] = cycles["conventional"]
    benchmark.extra_info["unified_cycles"] = cycles["unified"]
    benchmark.extra_info["speedup"] = round(speedup, 2)
    # The paper's "factors of 2 or more", with intmm-style slack: the
    # register-capturable workloads all clear 1.5x and most clear 2x.
    assert speedup > 1.5


def test_average_speedup_clears_two(benchmark):
    def measure_all():
        speedups = []
        for name in WORKLOADS:
            cycles = _measure(name)
            speedups.append(
                access_time_speedup(
                    cycles["conventional"], cycles["unified"]
                )
            )
        return sum(speedups) / len(speedups)

    average = benchmark(measure_all)
    benchmark.extra_info["average_speedup"] = round(average, 2)
    assert average >= 2.0


@pytest.mark.parametrize("name",
                         ("bubble", "intmm", "puzzle", "queen", "sieve",
                          "towers"))
def test_hybrid_speedup_all_benchmarks(benchmark, name):
    """E14: the hybrid never loses, even on call-dense towers."""
    cycles = benchmark(_measure, name)
    hybrid = access_time_speedup(cycles["conventional"], cycles["hybrid"])
    pure = access_time_speedup(cycles["conventional"], cycles["unified"])
    benchmark.extra_info["hybrid_speedup"] = round(hybrid, 2)
    benchmark.extra_info["pure_unified_speedup"] = round(pure, 2)
    assert hybrid > 1.5
    assert hybrid >= pure - 1e-9
