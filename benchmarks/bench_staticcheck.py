"""Cost of the static-analysis stack, exact refinement included.

The ``--check`` gate runs the must/may analysis plus the exact
refinement pass on every benchmark in CI, so its runtime budget is
part of the contract.  These benches time (a) the refinement pass
alone on top of a ready must/may solution, (b) the full
analyze-and-validate round trip, and (c) the static-only predictor —
and record the refinement's step counts and verdict-tier yield via
``record_property`` so ``BENCH_staticcheck.json`` tracks precision
alongside cost.
"""

import time

import pytest

from repro.cache.cache import CacheConfig
from repro.evalharness.experiment import DEFAULT_CACHE
from repro.programs import BENCHMARK_NAMES
from repro.staticcheck.crossval import cross_validate
from repro.staticcheck.mustmay import analyze_program
from repro.staticcheck.predictor import predict_program
from repro.unified.pipeline import CompilationOptions

from conftest import compiled_benchmark

#: The gate's compilation configuration: promotion off, full memory
#: reference stream (matches ``repro-analyze --check``).
CHECK_OPTIONS = CompilationOptions(scheme="unified", promotion="none")

SMALL_CACHE = CacheConfig(size_words=64, line_words=1, associativity=2,
                          policy="lru")


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_exact_refinement_pass(benchmark, name, record_property):
    """The refinement alone: footprint, routing, focused exploration."""
    _, program = compiled_benchmark(name, CHECK_OPTIONS)

    def analyze_exact():
        return analyze_program(program, DEFAULT_CACHE, exact=True)

    analysis = benchmark(analyze_exact)
    refinement = analysis.refinement
    record_property("exact_steps_used", refinement.steps_used)
    record_property("exact_exhausted", refinement.exhausted)
    record_property("persistent_sites", refinement.persistent_sites)
    record_property("input_dependent_sites",
                    refinement.input_dependent_sites)
    record_property("residual_unknown", refinement.residual_unknown)
    record_property("static_definite_percent",
                    round(analysis.static_definite_percent, 1))
    assert not refinement.exhausted
    assert analysis.static_classified_percent == 100.0


def test_check_gate_round_trip(benchmark, record_property):
    """One benchmark's full ``--check`` leg: analyze exactly under two
    geometries and audit every verdict against the replayed cache."""
    _, program = compiled_benchmark("bubble", CHECK_OPTIONS)

    def validate_both():
        reports = []
        for geometry in (DEFAULT_CACHE, SMALL_CACHE):
            analysis = analyze_program(program, geometry, exact=True)
            reports.append(
                cross_validate(program, geometry, analysis=analysis)
            )
        return reports

    reports = benchmark(validate_both)
    for report in reports:
        assert report.mismatches == []
        assert report.dynamic_decided_percent >= 90.0
    record_property("events_total", reports[0].events_total)
    record_property("definite_percent",
                    round(reports[0].dynamic_classified_percent, 1))


def test_static_predictor(benchmark, record_property):
    """The static-only predictor: one flat-memory execution, hit/miss
    from verdicts alone; must agree with the simulator exactly."""
    _, program = compiled_benchmark("towers", CHECK_OPTIONS)
    start = time.perf_counter()
    analysis = analyze_program(program, DEFAULT_CACHE, exact=True)
    analysis_seconds = time.perf_counter() - start

    prediction = benchmark(
        predict_program, program, DEFAULT_CACHE, analysis=analysis
    )
    assert prediction.exact
    record_property("analysis_seconds", round(analysis_seconds, 4))
    record_property("predicted_hits", prediction.hits)
    record_property("predicted_misses", prediction.misses)
    record_property("predicted_hit_rate", round(prediction.hit_rate, 4))
