"""Abstract/Section 1 claim: "inaccessible copies of values replace
those accessible ones from cache ... cache effectiveness is improved."

A combined instruction+data cache makes the effect measurable: data
references that bypass stop evicting instruction words, so the
instruction hit rate rises without the unified model touching how
instructions are cached.
"""

import pytest

from repro.evalharness.unifiedcache import (
    record_combined_trace,
    replay_combined,
)
from repro.cache.cache import CacheConfig

_traces = {}


def _trace(name):
    if name not in _traces:
        _traces[name] = record_combined_trace(name)[0]
    return _traces[name]


@pytest.mark.parametrize("size", (128, 256, 512))
@pytest.mark.parametrize("name", ("queen", "towers"))
def test_combined_cache(benchmark, name, size):
    trace = _trace(name)
    config = CacheConfig(size_words=size, associativity=4)

    def simulate():
        unified, _ = replay_combined(trace, config)
        conventional, _ = replay_combined(
            trace, config, honor_annotations=False
        )
        return unified, conventional

    unified, conventional = benchmark(simulate)
    benchmark.extra_info["i_refs"] = unified.i_refs
    benchmark.extra_info["unified_i_hit_rate"] = round(
        unified.i_hit_rate, 4
    )
    benchmark.extra_info["conventional_i_hit_rate"] = round(
        conventional.i_hit_rate, 4
    )
    # Bypassing data never *hurts* the instruction stream.
    assert unified.i_hit_rate >= conventional.i_hit_rate - 1e-9


def test_instruction_hit_rate_improves_under_pressure(benchmark):
    """At a capacity-pressured size the improvement is substantial."""
    trace = _trace("towers")
    config = CacheConfig(size_words=128, associativity=4)

    def simulate():
        unified, _ = replay_combined(trace, config)
        conventional, _ = replay_combined(
            trace, config, honor_annotations=False
        )
        return unified, conventional

    unified, conventional = benchmark(simulate)
    gain = unified.i_hit_rate - conventional.i_hit_rate
    benchmark.extra_info["i_hit_rate_gain"] = round(gain, 4)
    assert gain > 0.05
