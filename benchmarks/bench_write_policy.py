"""Write-back vs write-through under the unified model.

1980s caches were frequently write-through.  The dead-dirty-drop half
of the kill-bit benefit exists only with write-back (write-through has
no dirty data to drop), while write-back + kill bits eliminates the
write-back traffic entirely on spill/save-heavy code — the combination
the paper's spill-to-cache story relies on.
"""

import pytest

from conftest import traced_benchmark

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace

WORKLOAD = "towers"


@pytest.mark.parametrize("honor_kill", [True, False],
                         ids=["kill-on", "kill-off"])
@pytest.mark.parametrize("write_policy", ["writeback", "writethrough"])
def test_write_policy_grid(benchmark, write_policy, honor_kill):
    _bench, _program, trace = traced_benchmark(WORKLOAD)
    config = CacheConfig(
        size_words=256,
        associativity=4,
        write_policy=write_policy,
        honor_kill=honor_kill,
    )

    stats = benchmark(replay_trace, trace, config)
    benchmark.extra_info["write_policy"] = write_policy
    benchmark.extra_info["kill_bits"] = honor_kill
    benchmark.extra_info["writebacks"] = stats.writebacks
    benchmark.extra_info["dead_drops"] = stats.dead_drops
    benchmark.extra_info["words_to_memory"] = stats.words_to_memory
    benchmark.extra_info["bus_words"] = stats.bus_words
    if write_policy == "writethrough":
        assert stats.writebacks == 0
        assert stats.dead_drops == 0


def test_writeback_with_kill_beats_writethrough(benchmark):
    """Write-back + kill bits coalesces every dead store for free;
    write-through pays the bus for each one."""
    _bench, _program, trace = traced_benchmark(WORKLOAD)

    def simulate_pair():
        wb = replay_trace(
            trace,
            CacheConfig(size_words=256, associativity=4,
                        write_policy="writeback"),
        )
        wt = replay_trace(
            trace,
            CacheConfig(size_words=256, associativity=4,
                        write_policy="writethrough"),
        )
        return wb, wt

    writeback, writethrough = benchmark(simulate_pair)
    benchmark.extra_info["writeback_bus_words"] = writeback.bus_words
    benchmark.extra_info["writethrough_bus_words"] = writethrough.bus_words
    assert writeback.bus_words <= writethrough.bus_words
