"""Section 1's assumption: "small line size (e.g. one) is always
preferred for data cache [ChD89] [Lee87]".

Sweeps the data-cache line size at fixed capacity and measures bus
traffic and miss rate for the conventional baseline.  Word-granular
data references buy little spatial locality from wide lines, while
every miss moves line_words over the bus — line size one minimises
total bus words, which is the claim the paper leans on.
"""

import pytest

from conftest import traced_benchmark

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace

LINE_SIZES = (1, 2, 4, 8)
WORKLOAD = "bubble"
CACHE_WORDS = 64  # capacity-pressured so line effects are visible


@pytest.mark.parametrize("line_words", LINE_SIZES)
def test_line_size(benchmark, line_words):
    _bench, _program, trace = traced_benchmark(WORKLOAD)
    config = CacheConfig(
        size_words=CACHE_WORDS,
        line_words=line_words,
        associativity=4,
        honor_bypass=False,
        honor_kill=False,
    )

    stats = benchmark(replay_trace, trace, config)
    benchmark.extra_info["line_words"] = line_words
    benchmark.extra_info["miss_rate"] = round(stats.miss_rate, 4)
    benchmark.extra_info["bus_words"] = stats.bus_words


def test_line_one_minimises_bus_traffic(benchmark):
    _bench, _program, trace = traced_benchmark(WORKLOAD)

    def sweep():
        results = {}
        for line_words in LINE_SIZES:
            config = CacheConfig(
                size_words=CACHE_WORDS,
                line_words=line_words,
                associativity=4,
                honor_bypass=False,
                honor_kill=False,
            )
            results[line_words] = replay_trace(trace, config)
        return results

    results = benchmark(sweep)
    bus = {line: stats.bus_words for line, stats in results.items()}
    benchmark.extra_info["bus_words_by_line"] = bus
    assert bus[1] <= min(bus[4], bus[8])
