"""Section 2.2 context: bypass benefit across cache sizes.

The paper argues very large caches do not obviate compiler control;
this sweep shows the reference-traffic reduction is essentially
size-independent (it is a property of the reference stream), while
miss rates converge as the cache grows.
"""

import pytest

from conftest import traced_benchmark

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace

SIZES = (64, 128, 256, 1024, 4096)


@pytest.mark.parametrize("size", SIZES)
def test_size_sweep(benchmark, size):
    _bench, _program, trace = traced_benchmark("bubble")

    def simulate():
        unified = replay_trace(
            trace, CacheConfig(size_words=size, associativity=4)
        )
        conventional = replay_trace(
            trace,
            CacheConfig(size_words=size, associativity=4,
                        honor_bypass=False, honor_kill=False),
        )
        return unified, conventional

    unified, conventional = benchmark(simulate)
    reduction = unified.cache_traffic_reduction_vs(conventional)
    benchmark.extra_info["size_words"] = size
    benchmark.extra_info["reduction_percent"] = round(reduction, 1)
    benchmark.extra_info["unified_miss_rate"] = round(unified.miss_rate, 4)
    benchmark.extra_info["conventional_miss_rate"] = round(
        conventional.miss_rate, 4
    )
    # Reference-traffic reduction does not depend on capacity.
    assert reduction > 20.0


def test_reduction_is_size_invariant(benchmark):
    _bench, _program, trace = traced_benchmark("bubble")

    def sweep():
        reductions = []
        for size in SIZES:
            unified = replay_trace(
                trace, CacheConfig(size_words=size, associativity=4)
            )
            conventional = replay_trace(
                trace,
                CacheConfig(size_words=size, associativity=4,
                            honor_bypass=False, honor_kill=False),
            )
            reductions.append(
                unified.cache_traffic_reduction_vs(conventional)
            )
        return reductions

    reductions = benchmark(sweep)
    assert max(reductions) - min(reductions) < 1.0
    benchmark.extra_info["reductions"] = [round(r, 2) for r in reductions]
