"""Promotion ablation: how allocator aggressiveness moves the measured
fractions (the knob DESIGN.md calls out for calibrating against the
paper's 1989-era codegen).

none        -> every value reference is a memory reference (the pure
               "data value reference" measurement);
modest(1)   -> the Figure 5 configuration;
aggressive  -> modern graph coloring; unambiguous traffic collapses to
               spills and callee saves.
"""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace
from repro.programs import get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory

LEVELS = [
    ("none", 0),
    ("modest", 1),
    ("modest", 6),
    ("aggressive", 0),
]


@pytest.mark.parametrize("level,budget", LEVELS,
                         ids=["none", "modest-1", "modest-6", "aggressive"])
def test_promotion_level(benchmark, level, budget):
    bench = get_benchmark("bubble")
    options = CompilationOptions(
        scheme="unified", promotion=level, promotion_budget=budget or 6
    )
    program = compile_source(bench.source, options)

    def run_and_measure():
        memory = RecordingMemory()
        result = program.run(memory=memory)
        unified = replay_trace(memory.buffer, CacheConfig())
        conventional = replay_trace(
            memory.buffer,
            CacheConfig(honor_bypass=False, honor_kill=False),
        )
        return result, memory.buffer, unified, conventional

    result, trace, unified, conventional = benchmark(run_and_measure)
    assert tuple(result.output) == bench.expected_output
    summary = trace.summary()
    benchmark.extra_info["dynamic_refs"] = summary["total"]
    benchmark.extra_info["dynamic_percent_unambiguous"] = round(
        100.0 * summary["unambiguous"] / summary["total"], 1
    )
    benchmark.extra_info["reduction_percent"] = round(
        unified.cache_traffic_reduction_vs(conventional), 1
    )
    benchmark.extra_info["static_percent_unambiguous"] = round(
        program.static.percent_unambiguous, 1
    )
    benchmark.extra_info["vm_steps"] = result.steps
