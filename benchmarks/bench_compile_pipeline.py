"""Infrastructure benches: compiler pipeline cost and VM throughput.

Not a paper experiment; tracks that the reproduction stays usable as
the codebase evolves.
"""

import pytest

from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.lang.parser import parse_program
from repro.lang.sema import analyze


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_compile_benchmark(benchmark, name):
    source = get_benchmark(name).source
    options = CompilationOptions()
    program = benchmark(compile_source, source, options)
    total_instructions = sum(
        len(block.instructions)
        for function in program.module.functions.values()
        for block in function.blocks.values()
    )
    benchmark.extra_info["machine_instructions"] = total_instructions


def test_frontend_only(benchmark):
    source = get_benchmark("puzzle").source
    benchmark(lambda: analyze(parse_program(source)))


def test_vm_throughput(benchmark):
    """Steps per second on a tight arithmetic loop."""
    source = (
        "int main() { int i; int s; s = 0; "
        "for (i = 0; i < 20000; i++) s = s + i * 3 - 1; return s; }"
    )
    program = compile_source(
        source, CompilationOptions(promotion="aggressive")
    )

    result = benchmark(program.run)
    benchmark.extra_info["vm_steps"] = result.steps


def test_vm_throughput_memory_heavy(benchmark):
    """Steps per second when every reference hits the memory system."""
    source = (
        "int a[64]; int main() { int i; int s; s = 0; "
        "for (i = 0; i < 10000; i++) s = s + a[i % 64]; return s; }"
    )
    program = compile_source(source, CompilationOptions(promotion="none"))
    result = benchmark(program.run)
    benchmark.extra_info["vm_steps"] = result.steps
