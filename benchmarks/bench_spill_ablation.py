"""Section 4.2: register spills should go *to the cache*.

Compiles a twenty-live-values pressure kernel for an 8-register
machine so graph coloring genuinely spills, then compares routing the
spill and callee-save traffic through the cache (``AmSp_STORE``, the
unified model's choice) against bypassing it straight to memory.
"""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace
from repro.evalharness.sweeps import SPILL_KERNEL
from repro.ir.instructions import MachineConfig, RefOrigin
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory
from repro.vm.trace import origin_from_flags

_MACHINE = MachineConfig(num_regs=8, num_caller_saved=4)


def _trace(spill_to_cache):
    program = compile_source(
        SPILL_KERNEL,
        CompilationOptions(
            scheme="unified",
            promotion="aggressive",
            machine=_MACHINE,
            spill_to_cache=spill_to_cache,
        ),
    )
    memory = RecordingMemory()
    program.run(memory=memory)
    return memory.buffer


@pytest.mark.parametrize("spill_to_cache", [True, False],
                         ids=["spill-to-cache", "spill-bypass"])
def test_spill_routing(benchmark, spill_to_cache):
    trace = _trace(spill_to_cache)

    def simulate():
        return replay_trace(
            trace, CacheConfig(size_words=256, associativity=4)
        )

    stats = benchmark(simulate)
    summary = trace.summary()
    benchmark.extra_info["spill_refs"] = summary["by_origin"]["spill"]
    benchmark.extra_info["refs_cached"] = stats.refs_cached
    benchmark.extra_info["bus_words"] = stats.bus_words
    benchmark.extra_info["hits"] = stats.hits
    assert summary["by_origin"]["spill"] > 0


def test_spill_to_cache_reduces_bus_traffic(benchmark):
    """The paper's rationale: spills are short-lived and reused, so the
    cache absorbs them; sending them to memory pays bus words for
    every spill store and reload."""
    cached_trace = _trace(True)
    bypass_trace = _trace(False)
    spill_refs = sum(
        1 for _addr, flags in cached_trace
        if origin_from_flags(flags) is RefOrigin.SPILL
    )
    assert spill_refs > 0, "workload must actually spill"

    def simulate_pair():
        config = CacheConfig(size_words=256, associativity=4)
        return (
            replay_trace(cached_trace, config),
            replay_trace(bypass_trace, config),
        )

    to_cache, to_memory = benchmark(simulate_pair)
    benchmark.extra_info["spill_refs"] = spill_refs
    benchmark.extra_info["bus_words_spill_to_cache"] = to_cache.bus_words
    benchmark.extra_info["bus_words_spill_bypass"] = to_memory.bus_words
    assert to_cache.bus_words < to_memory.bus_words
