"""The one-pass sweep acceptance benchmark, recorded in
``BENCH_onepass.json``.

Six claims, all asserted live:

* **LRU replay**: on the 6-benchmark × 4-geometry associativity
  ladder (64 sets fixed, ways 1/2/4/8 — the canonical Mattson shape,
  every geometry answered by the same per-set distance histograms),
  the stack-distance engine
  (:func:`repro.cache.stackdist.replay_trace_sweep`) beats the
  inlined multi-replay core
  (:func:`repro.cache.replay.replay_trace_multi`) by at least **3x**
  single-core, with bit-identical statistics.
* **Vectorized sweep**: the same ladder through the set-major array
  kernels (:mod:`repro.cache.vectorized`, ``engine="vectorized"``)
  beats the scalar stack-distance engine by at least **2x**
  (min-of-3 wall clock), bit-identical again.
* **FIFO / MIN sweeps**: the same ladder under FIFO and Belady MIN
  routes through the single-pass set-count stackers
  (:func:`repro.cache.semantics.fifo_sweep` /
  :func:`repro.cache.semantics.min_sweep`), each at least **2x** over
  the per-configuration replay path, bit-identical.
* **Trace generation**: the closure-compiled VM hot loop
  (:class:`repro.vm.machine.Machine`) produces the recorded reference
  traces at least **1.5x** faster than the per-step dispatch reference
  interpreter (:class:`repro.vm.reference.ReferenceMachine`) it
  replaced — the cold-path cost when the artifact cache is empty.
* **Superinstruction VM**: under aggressive promotion (locals in
  registers — the codegen the fusion targets) the fused-run handler
  table beats the same Machine with fusion disabled by at least
  **1.3x** (min-of-3 per side), with identical output and step
  counts.

The record also carries the RPTRACE2 delta-codec compression ratio
over the same traces.  When the environment cannot support the claims
(no NumPy for the vectorized decode, or the scheduler grants fewer
than two CPUs for stable wall-clock ratios) the benchmark *skips* and
records the reason instead of failing.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_onepass.py -q
"""

import json
import os
import platform
import time

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.replay import MinConfig, replay_trace_multi
from repro.cache.stackdist import replay_trace_sweep
from repro.evalharness.experiment import conventional_config
from repro.evalharness.figure5 import figure5_options
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.machine import Machine
from repro.vm.memory import RecordingMemory
from repro.vm.reference import ReferenceMachine

#: The associativity ladder: 64 sets at every rung, so one profiling
#: pass covers the whole column of geometries.
SWEEP_WAYS = (1, 2, 4, 8)
NUM_SETS = 64

GEOMETRIES = tuple(
    CacheConfig(
        size_words=NUM_SETS * ways,
        line_words=1,
        associativity=ways,
        policy="lru",
    )
    for ways in SWEEP_WAYS
)

RECORD_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_onepass.json",
)

REPLAY_SPEEDUP_FLOOR = 3.0
VECTORIZED_SPEEDUP_FLOOR = 2.0
FIFO_SPEEDUP_FLOOR = 2.0
MIN_SPEEDUP_FLOOR = 2.0
VM_SPEEDUP_FLOOR = 1.5
SUPERINSTRUCTION_SPEEDUP_FLOOR = 1.3

#: min-of-N repetitions for the wall-clock ratios that are asserted
#: against tight floors; the minimum is robust against scheduler noise
#: in a way a single sample on a busy box is not.
TIMING_REPS = 5


class _UnfusedMachine(Machine):
    """The closure VM with superinstruction fusion disabled — the
    baseline side of the fused-vs-unfused ratio."""

    _enable_fusion = False


def _numpy_version():
    try:
        import numpy

        return numpy.__version__
    except Exception:
        return None


def record_skip(path, reason):
    """Degrade gracefully: write the skip reason where the timing
    record would have gone, then skip the test."""
    record = {
        "skipped": reason,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "effective_cpus": effective_cpus(),
    }
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    pytest.skip(reason)


def effective_cpus():
    """CPUs this process may actually run on, where the OS can say."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count()


def check_environment(path):
    """Skip (with a recorded reason) when the floors cannot be fair.

    ``REPRO_BENCH_FORCE=1`` overrides the guard — the ratios here are
    single-core algorithmic speedups, so a pinned box can still
    produce a valid record when the operator asks for one.
    """
    if os.environ.get("REPRO_BENCH_FORCE"):
        return
    try:
        import numpy  # noqa: F401
    except Exception:
        record_skip(path, "NumPy unavailable: the one-pass engines "
                          "fall back to pure-Python decode and the "
                          "speedup floors do not apply")
    cpus = effective_cpus()
    if cpus is not None and cpus < 2:
        record_skip(path, "only {} effective CPU(s): wall-clock "
                          "ratios are too noisy to assert "
                          "floors".format(cpus))


def _specs():
    """Unified + conventional per geometry, the harness sweep shape."""
    specs = []
    for geometry in GEOMETRIES:
        specs.append(geometry)
        specs.append(conventional_config(geometry))
    return specs


def _policy_specs(policy):
    """The same ladder under another replacement policy."""
    if policy == "min":
        return [MinConfig(config=geometry) for geometry in GEOMETRIES]
    return [
        CacheConfig(
            size_words=geometry.size_words,
            line_words=1,
            associativity=geometry.associativity,
            policy=policy,
        )
        for geometry in GEOMETRIES
    ]


def _trace_with(vm_class, program):
    memory = RecordingMemory()
    vm = vm_class(program.module, memory=memory,
                  machine=program.options.machine)
    started = time.perf_counter()
    result = vm.run()
    seconds = time.perf_counter() - started
    return memory.buffer, result, seconds


def test_onepass_speedup_and_equivalence():
    check_environment(RECORD_PATH)
    options = figure5_options()
    programs = {
        name: compile_source(get_benchmark(name).source, options)
        for name in BENCHMARK_NAMES
    }

    # -- cold path: VM trace generation, closure loop vs reference ----
    traces = {}
    vm_seconds = 0.0
    reference_seconds = 0.0
    for name, program in programs.items():
        trace, result, seconds = _trace_with(Machine, program)
        traces[name] = trace
        vm_seconds += seconds
        ref_trace, ref_result, ref_seconds = _trace_with(
            ReferenceMachine, program
        )
        reference_seconds += ref_seconds
        assert ref_result.output == result.output
        assert ref_result.steps == result.steps
        assert list(ref_trace) == list(trace)

    # -- warm path: geometry sweep, stackdist vs multi-replay ---------
    specs = _specs()
    multi_started = time.perf_counter()
    multi = {
        name: replay_trace_multi(trace, specs)
        for name, trace in traces.items()
    }
    multi_seconds = time.perf_counter() - multi_started

    sweep_started = time.perf_counter()
    swept = {
        name: replay_trace_sweep(trace, specs, engine="stackdist")
        for name, trace in traces.items()
    }
    sweep_seconds = time.perf_counter() - sweep_started

    for name in BENCHMARK_NAMES:
        for spec, want, got in zip(specs, multi[name], swept[name]):
            assert got.as_dict() == want.as_dict(), (name, spec)

    # -- vectorized sweep: set-major array kernels vs scalar profiler -
    def _sweep_all(engine):
        return {
            name: replay_trace_sweep(trace, specs, engine=engine)
            for name, trace in traces.items()
        }

    vectored = _sweep_all("vectorized")
    for name in BENCHMARK_NAMES:
        for spec, want, got in zip(specs, multi[name], vectored[name]):
            assert got.as_dict() == want.as_dict(), ("vectorized", name, spec)

    def _min_of(reps, fn):
        best = None
        for _ in range(reps):
            started = time.perf_counter()
            fn()
            seconds = time.perf_counter() - started
            best = seconds if best is None else min(best, seconds)
        return best

    scalar_best = _min_of(TIMING_REPS, lambda: _sweep_all("stackdist"))
    vector_best = _min_of(TIMING_REPS, lambda: _sweep_all("vectorized"))
    vectorized_speedup = scalar_best / vector_best

    # -- superinstruction VM: fused run handlers vs per-op closures ---
    aggressive = CompilationOptions(scheme="unified",
                                    promotion="aggressive")
    fused_seconds = 0.0
    unfused_seconds = 0.0
    for name in BENCHMARK_NAMES:
        program = compile_source(get_benchmark(name).source, aggressive)

        def _vm_run_seconds(vm_class, program=program):
            _trace, _result, seconds = _trace_with(vm_class, program)
            return seconds

        fused_trace, fused_result, _ = _trace_with(Machine, program)
        plain_trace, plain_result, _ = _trace_with(_UnfusedMachine, program)
        assert plain_result.output == fused_result.output, name
        assert plain_result.steps == fused_result.steps, name
        assert list(plain_trace) == list(fused_trace), name
        fused_seconds += min(
            _vm_run_seconds(Machine) for _ in range(TIMING_REPS)
        )
        unfused_seconds += min(
            _vm_run_seconds(_UnfusedMachine) for _ in range(TIMING_REPS)
        )
    superinstruction_speedup = unfused_seconds / fused_seconds

    # -- FIFO / MIN ladders: set-count stackers vs per-config replay --
    policy_speedups = {}
    for policy in ("fifo", "min"):
        policy_specs = _policy_specs(policy)
        fallback_started = time.perf_counter()
        fallback = {
            name: replay_trace_multi(trace, policy_specs)
            for name, trace in traces.items()
        }
        fallback_seconds = time.perf_counter() - fallback_started

        stacked_started = time.perf_counter()
        stacked = {
            name: replay_trace_sweep(trace, policy_specs, engine="auto")
            for name, trace in traces.items()
        }
        stacked_seconds = time.perf_counter() - stacked_started

        for name in BENCHMARK_NAMES:
            for spec, want, got in zip(
                policy_specs, fallback[name], stacked[name]
            ):
                assert got.as_dict() == want.as_dict(), (policy, name, spec)
        policy_speedups[policy] = {
            "fallback_seconds": round(fallback_seconds, 3),
            "sweep_seconds": round(stacked_seconds, 3),
            "speedup": round(fallback_seconds / stacked_seconds, 2),
        }

    # -- trace codec: RPTRACE2 delta varints vs verbatim RPTRACE1 -----
    v1_bytes = sum(len(t.to_bytes(version=1)) for t in traces.values())
    v2_bytes = sum(len(t.to_bytes()) for t in traces.values())

    replay_speedup = multi_seconds / sweep_seconds
    vm_speedup = reference_seconds / vm_seconds
    record = {
        "benchmarks": list(BENCHMARK_NAMES),
        "num_sets": NUM_SETS,
        "ways": list(SWEEP_WAYS),
        "geometry_sizes": [g.size_words for g in GEOMETRIES],
        "specs_per_trace": len(specs),
        "multi_replay_seconds": round(multi_seconds, 3),
        "stackdist_seconds": round(sweep_seconds, 3),
        "replay_speedup": round(replay_speedup, 2),
        "reference_vm_seconds": round(reference_seconds, 3),
        "closure_vm_seconds": round(vm_seconds, 3),
        "vm_speedup": round(vm_speedup, 2),
        "vectorized_sweep": {
            "stackdist_seconds": round(scalar_best, 3),
            "vectorized_seconds": round(vector_best, 3),
            "speedup": round(vectorized_speedup, 2),
            "timing_reps": TIMING_REPS,
        },
        "superinstruction_vm": {
            "promotion": "aggressive",
            "unfused_seconds": round(unfused_seconds, 3),
            "fused_seconds": round(fused_seconds, 3),
            "speedup": round(superinstruction_speedup, 2),
            "timing_reps": TIMING_REPS,
        },
        "fifo_sweep": policy_speedups["fifo"],
        "min_sweep": policy_speedups["min"],
        "trace_bytes_v1": v1_bytes,
        "trace_bytes_v2": v2_bytes,
        "trace_v2_compression": round(v1_bytes / v2_bytes, 2),
        "replay_speedup_floor": REPLAY_SPEEDUP_FLOOR,
        "vectorized_speedup_floor": VECTORIZED_SPEEDUP_FLOOR,
        "fifo_speedup_floor": FIFO_SPEEDUP_FLOOR,
        "min_speedup_floor": MIN_SPEEDUP_FLOOR,
        "vm_speedup_floor": VM_SPEEDUP_FLOOR,
        "superinstruction_speedup_floor": SUPERINSTRUCTION_SPEEDUP_FLOOR,
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }
    try:
        record["effective_cpus"] = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        record["effective_cpus"] = None
    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert replay_speedup >= REPLAY_SPEEDUP_FLOOR, (
        "stack-distance sweep speedup {:.2f}x is below the {}x floor "
        "(multi {:.2f}s, stackdist {:.2f}s)".format(
            replay_speedup, REPLAY_SPEEDUP_FLOOR,
            multi_seconds, sweep_seconds,
        )
    )
    assert vectorized_speedup >= VECTORIZED_SPEEDUP_FLOOR, (
        "vectorized sweep speedup {:.2f}x is below the {}x floor "
        "(stackdist {:.2f}s, vectorized {:.2f}s)".format(
            vectorized_speedup, VECTORIZED_SPEEDUP_FLOOR,
            scalar_best, vector_best,
        )
    )
    assert vm_speedup >= VM_SPEEDUP_FLOOR, (
        "closure VM speedup {:.2f}x is below the {}x floor "
        "(reference {:.2f}s, closure {:.2f}s)".format(
            vm_speedup, VM_SPEEDUP_FLOOR,
            reference_seconds, vm_seconds,
        )
    )
    assert superinstruction_speedup >= SUPERINSTRUCTION_SPEEDUP_FLOOR, (
        "superinstruction VM speedup {:.2f}x is below the {}x floor "
        "(unfused {:.2f}s, fused {:.2f}s)".format(
            superinstruction_speedup, SUPERINSTRUCTION_SPEEDUP_FLOOR,
            unfused_seconds, fused_seconds,
        )
    )
    for policy, floor in (("fifo", FIFO_SPEEDUP_FLOOR),
                          ("min", MIN_SPEEDUP_FLOOR)):
        timing = policy_speedups[policy]
        assert timing["speedup"] >= floor, (
            "{} set-count sweep speedup {:.2f}x is below the {}x floor "
            "(per-config {:.2f}s, sweep {:.2f}s)".format(
                policy, timing["speedup"], floor,
                timing["fallback_seconds"], timing["sweep_seconds"],
            )
        )
