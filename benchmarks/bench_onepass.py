"""The one-pass sweep acceptance benchmark, recorded in
``BENCH_onepass.json``.

Two claims, both asserted live:

* **Replay**: on the 6-benchmark × 4-geometry associativity ladder
  (64 sets fixed, ways 1/2/4/8 — the canonical Mattson shape, every
  geometry answered by the same per-set distance histograms), the
  stack-distance engine (:func:`repro.cache.stackdist.replay_trace_sweep`)
  beats the inlined multi-replay core
  (:func:`repro.cache.replay.replay_trace_multi`) by at least **3x**
  single-core, with bit-identical statistics.
* **Trace generation**: the closure-compiled VM hot loop
  (:class:`repro.vm.machine.Machine`) produces the recorded reference
  traces at least **1.5x** faster than the per-step dispatch reference
  interpreter (:class:`repro.vm.reference.ReferenceMachine`) it
  replaced — the cold-path cost when the artifact cache is empty.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_onepass.py -q
"""

import json
import os
import platform
import time

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace_multi
from repro.cache.stackdist import replay_trace_sweep
from repro.evalharness.experiment import conventional_config
from repro.evalharness.figure5 import figure5_options
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import compile_source
from repro.vm.machine import Machine
from repro.vm.memory import RecordingMemory
from repro.vm.reference import ReferenceMachine

#: The associativity ladder: 64 sets at every rung, so one profiling
#: pass covers the whole column of geometries.
SWEEP_WAYS = (1, 2, 4, 8)
NUM_SETS = 64

GEOMETRIES = tuple(
    CacheConfig(
        size_words=NUM_SETS * ways,
        line_words=1,
        associativity=ways,
        policy="lru",
    )
    for ways in SWEEP_WAYS
)

RECORD_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_onepass.json",
)

REPLAY_SPEEDUP_FLOOR = 3.0
VM_SPEEDUP_FLOOR = 1.5


def _specs():
    """Unified + conventional per geometry, the harness sweep shape."""
    specs = []
    for geometry in GEOMETRIES:
        specs.append(geometry)
        specs.append(conventional_config(geometry))
    return specs


def _trace_with(vm_class, program):
    memory = RecordingMemory()
    vm = vm_class(program.module, memory=memory,
                  machine=program.options.machine)
    started = time.perf_counter()
    result = vm.run()
    seconds = time.perf_counter() - started
    return memory.buffer, result, seconds


def test_onepass_speedup_and_equivalence():
    options = figure5_options()
    programs = {
        name: compile_source(get_benchmark(name).source, options)
        for name in BENCHMARK_NAMES
    }

    # -- cold path: VM trace generation, closure loop vs reference ----
    traces = {}
    vm_seconds = 0.0
    reference_seconds = 0.0
    for name, program in programs.items():
        trace, result, seconds = _trace_with(Machine, program)
        traces[name] = trace
        vm_seconds += seconds
        ref_trace, ref_result, ref_seconds = _trace_with(
            ReferenceMachine, program
        )
        reference_seconds += ref_seconds
        assert ref_result.output == result.output
        assert ref_result.steps == result.steps
        assert list(ref_trace) == list(trace)

    # -- warm path: geometry sweep, stackdist vs multi-replay ---------
    specs = _specs()
    multi_started = time.perf_counter()
    multi = {
        name: replay_trace_multi(trace, specs)
        for name, trace in traces.items()
    }
    multi_seconds = time.perf_counter() - multi_started

    sweep_started = time.perf_counter()
    swept = {
        name: replay_trace_sweep(trace, specs, engine="stackdist")
        for name, trace in traces.items()
    }
    sweep_seconds = time.perf_counter() - sweep_started

    for name in BENCHMARK_NAMES:
        for spec, want, got in zip(specs, multi[name], swept[name]):
            assert got.as_dict() == want.as_dict(), (name, spec)

    replay_speedup = multi_seconds / sweep_seconds
    vm_speedup = reference_seconds / vm_seconds
    record = {
        "benchmarks": list(BENCHMARK_NAMES),
        "num_sets": NUM_SETS,
        "ways": list(SWEEP_WAYS),
        "geometry_sizes": [g.size_words for g in GEOMETRIES],
        "specs_per_trace": len(specs),
        "multi_replay_seconds": round(multi_seconds, 3),
        "stackdist_seconds": round(sweep_seconds, 3),
        "replay_speedup": round(replay_speedup, 2),
        "reference_vm_seconds": round(reference_seconds, 3),
        "closure_vm_seconds": round(vm_seconds, 3),
        "vm_speedup": round(vm_speedup, 2),
        "replay_speedup_floor": REPLAY_SPEEDUP_FLOOR,
        "vm_speedup_floor": VM_SPEEDUP_FLOOR,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }
    try:
        record["effective_cpus"] = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        record["effective_cpus"] = None
    with open(RECORD_PATH, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert replay_speedup >= REPLAY_SPEEDUP_FLOOR, (
        "stack-distance sweep speedup {:.2f}x is below the {}x floor "
        "(multi {:.2f}s, stackdist {:.2f}s)".format(
            replay_speedup, REPLAY_SPEEDUP_FLOOR,
            multi_seconds, sweep_seconds,
        )
    )
    assert vm_speedup >= VM_SPEEDUP_FLOOR, (
        "closure VM speedup {:.2f}x is below the {}x floor "
        "(reference {:.2f}s, closure {:.2f}s)".format(
            vm_speedup, VM_SPEEDUP_FLOOR,
            reference_seconds, vm_seconds,
        )
    )
