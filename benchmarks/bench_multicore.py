"""Cost of the multi-core shared-LLC simulation, recorded in
``BENCH_multicore.json``.

The contention layer must stay close to free: simulating two cores
against private L1s plus one shared level may cost at most
``OVERHEAD_CEILING`` times the two *independent* single-core two-level
replays it generalizes (same traces, same L1, a private copy of the
shared level each), best of ``ROUNDS`` rounds, asserted live.  The
record carries the absolute times, the per-configuration grid times,
and the event throughput, so the layer's cost trajectory accumulates
alongside the other BENCH records.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_multicore.py -q
"""

import time

import pytest

from conftest import traced_benchmark

from repro.cache.cache import Cache, CacheConfig
from repro.cache.multicore import (
    interleave_traces,
    simulate_multicore,
)
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE

WORKLOADS = ("intmm", "sieve")
L1 = CacheConfig(size_words=64, line_words=1, associativity=2)
SHARED = CacheConfig(size_words=512, line_words=1, associativity=8)

#: Ceiling on (2-core shared simulation) / (two independent replays).
#: The shared path adds the interleave walk and per-core bookkeeping
#: on top of the same per-event cache work — measured well under 2x;
#: 3x leaves noise room without hiding a superlinear regression.
OVERHEAD_CEILING = 3.0
ROUNDS = 3


def independent_replay(traces):
    """The baseline: each trace drives its own private L1 + L2 chain."""
    for trace in traces:
        l1 = Cache(L1)
        l2 = Cache(CacheConfig(
            size_words=SHARED.size_words, line_words=SHARED.line_words,
            associativity=SHARED.associativity,
            honor_bypass=False, honor_kill=False,
        ))
        l1_access = l1.access
        l2_access = l2.access
        for address, flags in trace:
            outcome = l1_access(
                address,
                bool(flags & FLAG_WRITE),
                bool(flags & FLAG_BYPASS),
                bool(flags & FLAG_KILL),
            )
            if outcome != "hit":
                l2_access(address, bool(flags & FLAG_WRITE))


def best_of(rounds, run):
    best = None
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


@pytest.mark.parametrize("partitioned", [False, True],
                         ids=["unpartitioned", "partitioned"])
def test_multicore_overhead_vs_independent(partitioned, record_property):
    traces = [traced_benchmark(name)[2] for name in WORKLOADS]
    merged = interleave_traces(traces, seed=0, chunk=8)
    quotas = (4, 4) if partitioned else None

    independent_seconds, _ = best_of(
        ROUNDS, lambda: independent_replay(traces)
    )
    shared_seconds, result = best_of(
        ROUNDS,
        lambda: simulate_multicore(traces, L1, SHARED, quotas=quotas,
                                   merged=merged),
    )
    relative = shared_seconds / independent_seconds
    events = sum(len(trace) for trace in traces)
    record_property("cores", "+".join(WORKLOADS))
    record_property("events", events)
    record_property("independent_seconds", round(independent_seconds, 4))
    record_property("shared_seconds", round(shared_seconds, 4))
    record_property("relative_cost", round(relative, 2))
    record_property("events_per_second",
                    int(events / shared_seconds) if shared_seconds else 0)
    record_property("shared_hit_rate",
                    round(result.shared_stats.hit_rate, 4))
    assert relative <= OVERHEAD_CEILING, (
        "2-core shared simulation costs {:.2f}x the independent "
        "replays (shared {:.3f}s, independent {:.3f}s), over the {}x "
        "ceiling".format(
            relative, shared_seconds, independent_seconds,
            OVERHEAD_CEILING,
        )
    )


def test_interleave_cost_is_negligible(record_property):
    """The merge itself must stay a vanishing fraction of a replay."""
    traces = [traced_benchmark(name)[2] for name in WORKLOADS]
    seconds, merged = best_of(
        ROUNDS, lambda: interleave_traces(traces, seed=0, chunk=8)
    )
    record_property("events", len(merged))
    record_property("interleave_seconds", round(seconds, 4))
    record_property("events_per_second",
                    int(len(merged) / seconds) if seconds else 0)
    # An array-slice merge of ~220k events should take milliseconds;
    # a one-second budget only catches catastrophic regressions.
    assert seconds < 1.0
